"""Deterministic discrete-event simulation kernel.

The whole reproduction runs on one :class:`Simulator`: components schedule
callbacks at integer tick times and the kernel executes them in
``(time, sequence)`` order, so ties are broken by scheduling order and every
run is bit-reproducible.

This is the hottest loop in the package, and it is hand-tuned:

* **Calendar queue.**  Events live in per-tick *buckets* (a dict keyed by
  tick) and a binary heap orders only the *distinct* tick values.  Almost
  every delay in the simulated machine is a small constant (1-10 tick ring
  hops, the 10-cycle LLC lookup, 4-tick DRAM command cycles), so most
  schedules land on a tick that already has a bucket — an O(1) list append
  with no comparisons at all.  Only the first event of a tick touches the
  heap, and those comparisons are C-level int compares, never a Python
  ``__lt__``.  Within a bucket, append order *is* ``seq`` order, so
  execution order is exactly the old kernel's ``(time, seq)`` order
  (proven by the golden tests in ``tests/sim/test_engine_golden.py``).

* **Closure-free scheduling.**  :meth:`Simulator.at_call` /
  :meth:`Simulator.after_call` store ``(fn, arg)`` directly in the event's
  slots, so the per-memory-access hot paths (core/GPU -> LLC -> DRAM)
  schedule without allocating a lambda or bound-method closure per event.

* **O(1) bookkeeping.**  ``pending()`` reads a live-event counter that
  :meth:`Event.cancel` and the run loop maintain; cancellation stays lazy,
  and when cancelled entries outnumber live ones the queue is compacted in
  place so long runs with heavy cancellation (DRAM ``_kick`` retimers, ATU
  gating) stay bounded in memory.

* **Opt-in profiling.**  ``enable_profiling()`` attaches a
  :class:`repro.prof.KernelProfile`; the default path checks one attribute
  per ``run()`` call — per-event cost is strictly zero when disabled.

:class:`ReferenceSimulator` preserves the previous single-heap kernel
verbatim.  It is not used by the simulator itself; it exists so the
equivalence tests and ``scripts/bench_kernel.py`` can compare order and
speed against the pre-calendar-queue implementation.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

#: sentinel marking "no argument" on plain (closure-carrying) events
_NO_ARG = object()

#: compact when more than this many cancelled entries are enqueued AND
#: they outnumber the live ones (see Simulator._maybe_compact)
_COMPACT_MIN = 64


class Event:
    """A scheduled callback.  ``cancel()`` is O(1) (lazy deletion)."""

    __slots__ = ("time", "seq", "fn", "arg", "sim", "cancelled")

    def __init__(self, time: int, seq: int, fn: Callable, arg: Any,
                 sim: Optional["Simulator"]):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.arg = arg
        self.sim = sim
        self.cancelled = False

    def cancel(self) -> None:
        if not self.cancelled:
            self.cancelled = True
            sim = self.sim
            if sim is not None:
                sim._live -= 1
                sim._cancelled += 1

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Simulator:
    """Event queue with integer time in ticks (1 tick = 1 CPU cycle).

    Scheduling API:

    * ``at(time, fn)`` / ``after(delay, fn)`` — call ``fn()`` (any
      callable, including closures).
    * ``at_call(time, fn, arg)`` / ``after_call(delay, fn, arg)`` — call
      ``fn(arg)``; the pair is stored in the event's slots, so hot paths
      avoid allocating a closure per scheduled callback.
    """

    def __init__(self) -> None:
        self.now: int = 0
        self._seq: int = 0
        self._stop = False
        #: tick -> list of events at that tick, in scheduling (seq) order
        self._buckets: dict[int, list[Event]] = {}
        #: heap of the distinct tick values present in ``_buckets``
        self._times: list[int] = []
        self._live = 0                  # scheduled, not cancelled, not run
        self._cancelled = 0             # cancelled but still enqueued
        self._size = 0                  # total enqueued entries
        #: idle-epoch fast-forward accounting: the run loop advances the
        #: clock bucket-to-bucket, so any gap between consecutive event
        #: ticks is skipped in one heap pop.  ``ff_jumps`` counts the
        #: jumps that crossed at least one empty tick and ``ff_ticks``
        #: the total ticks never visited — evidence that idle intervals
        #: cost O(1), not O(interval).
        self.ff_jumps = 0
        self.ff_ticks = 0
        #: attached :class:`repro.prof.KernelProfile`, or None (default)
        self.profile = None

    # -- scheduling (each variant inlines the push: this is the hot path) --

    def at(self, time: int, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` at absolute ``time`` (must be >= now)."""
        if time < self.now:
            raise ValueError(f"schedule in the past: {time} < {self.now}")
        self._seq += 1
        t = int(time)
        ev = Event(t, self._seq, fn, _NO_ARG, self)
        b = self._buckets.get(t)
        if b is None:
            self._buckets[t] = [ev]
            heapq.heappush(self._times, t)
        else:
            b.append(ev)
        self._size += 1
        self._live += 1
        return ev

    def after(self, delay: int, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` ``delay`` ticks from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self._seq += 1
        t = self.now + int(delay)
        ev = Event(t, self._seq, fn, _NO_ARG, self)
        b = self._buckets.get(t)
        if b is None:
            self._buckets[t] = [ev]
            heapq.heappush(self._times, t)
        else:
            b.append(ev)
        self._size += 1
        self._live += 1
        return ev

    def at_call(self, time: int, fn: Callable[[Any], None],
                arg: Any) -> Event:
        """Schedule ``fn(arg)`` at absolute ``time`` without a closure."""
        if time < self.now:
            raise ValueError(f"schedule in the past: {time} < {self.now}")
        self._seq += 1
        t = int(time)
        ev = Event(t, self._seq, fn, arg, self)
        b = self._buckets.get(t)
        if b is None:
            self._buckets[t] = [ev]
            heapq.heappush(self._times, t)
        else:
            b.append(ev)
        self._size += 1
        self._live += 1
        return ev

    def after_call(self, delay: int, fn: Callable[[Any], None],
                   arg: Any) -> Event:
        """Schedule ``fn(arg)`` ``delay`` ticks from now, closure-free."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self._seq += 1
        t = self.now + int(delay)
        ev = Event(t, self._seq, fn, arg, self)
        b = self._buckets.get(t)
        if b is None:
            self._buckets[t] = [ev]
            heapq.heappush(self._times, t)
        else:
            b.append(ev)
        self._size += 1
        self._live += 1
        return ev

    # -- bookkeeping ------------------------------------------------------

    def pending(self) -> int:
        """Live (scheduled, not cancelled) events — O(1)."""
        return self._live

    def head(self) -> Optional[tuple[int, int]]:
        """``(tick, bucket length)`` of the earliest pending bucket.

        Read-only introspection for diagnostics (the invariant monitor's
        dump); ``None`` when the queue is empty.  While the run loop is
        mid-bucket the executing bucket's tick has already been popped
        from the heap, so this reports the *next* tick.
        """
        if not self._times:
            return None
        t = self._times[0]
        b = self._buckets.get(t)
        return (t, len(b) if b else 0)

    def stop(self) -> None:
        """Request the run loop to exit after the current event."""
        self._stop = True

    def fast_forward_stats(self) -> dict[str, int]:
        """Idle-epoch fast-forward counters (see ``__init__``)."""
        return {"jumps": self.ff_jumps, "ticks_skipped": self.ff_ticks}

    def enable_profiling(self):
        """Attach (and return) a :class:`repro.prof.KernelProfile`.

        Subsequent :meth:`run` calls record per-owner event counts and a
        wall-time breakdown.  Strictly opt-in: when no profile is
        attached the run loop takes the uninstrumented path.
        """
        from repro.prof import KernelProfile
        if self.profile is None:
            self.profile = KernelProfile()
        return self.profile

    def _maybe_compact(self) -> None:
        """Rebuild the queue without cancelled entries.

        Called only from safe points (between buckets in the run loop and
        from schedule calls outside it), never while a bucket is being
        iterated.  Rebuilds in place so the run loop's local aliases of
        ``_buckets``/``_times`` stay valid.
        """
        if self._cancelled < _COMPACT_MIN or \
                self._cancelled * 2 <= self._size:
            return
        buckets = self._buckets
        size = 0
        for t in list(buckets):
            b = buckets[t]
            keep = [ev for ev in b if not ev.cancelled]
            if not keep:
                del buckets[t]
            else:
                if len(keep) != len(b):
                    buckets[t] = keep
                size += len(keep)
        self._times[:] = buckets.keys()
        heapq.heapify(self._times)
        self._size = size
        self._cancelled = 0

    # -- the run loop -----------------------------------------------------

    def run(self, until: Optional[int] = None,
            max_events: Optional[int] = None) -> int:
        """Run until the queue drains, ``until`` ticks, or ``max_events``.

        When ``until`` is given the clock always reaches it unless the
        run was cut short by ``stop()`` or ``max_events`` — even if the
        queue drains earlier — so consecutive ``run(until=...)`` calls
        observe a consistent clock.  Returns the number of events
        executed.
        """
        if self.profile is not None:
            return self._run_profiled(until, max_events)
        if max_events is not None and max_events < 1:
            max_events = 1            # old kernel ran one event, then cut
        executed = 0
        self._stop = False
        buckets = self._buckets
        times = self._times
        heappop = heapq.heappop
        no_arg = _NO_ARG
        while times:
            if self._cancelled > _COMPACT_MIN:
                self._maybe_compact()
                if not times:
                    break
            t = times[0]
            if until is not None and t > until:
                if until > self.now + 1:
                    self.ff_jumps += 1
                    self.ff_ticks += until - self.now - 1
                self.now = until
                return executed
            heappop(times)
            # the bucket stays in the dict while it executes, so an event
            # scheduling at the current tick appends to it and runs in
            # this same pass, in seq order
            bucket = buckets[t]
            if t > self.now + 1:      # idle epoch: skipped in one pop
                self.ff_jumps += 1
                self.ff_ticks += t - self.now - 1
            self.now = t
            # per-bucket bookkeeping: ``_size``/``_cancelled`` are only
            # read between buckets (compaction) and from ``head()``, so
            # they are folded in once per bucket instead of once per
            # event; ``_live`` backs ``pending()``, which callbacks may
            # read, and stays exact per event
            i = 0
            ncancelled = 0
            while i < len(bucket):
                ev = bucket[i]
                i += 1
                if ev.cancelled:
                    ncancelled += 1
                    continue
                self._live -= 1
                ev.sim = None         # a late cancel() must not recount
                arg = ev.arg
                if arg is no_arg:
                    ev.fn()
                else:
                    ev.fn(arg)
                executed += 1
                if self._stop or executed == max_events:
                    # leave the unexecuted suffix for a later run()
                    del bucket[:i]
                    self._size -= i
                    self._cancelled -= ncancelled
                    if bucket:
                        heapq.heappush(times, t)
                    else:
                        del buckets[t]
                    return executed
            self._size -= i
            self._cancelled -= ncancelled
            del buckets[t]
        if (until is not None and not self._stop and self.now < until):
            # queue drained before the horizon: advance the clock to it
            if until > self.now + 1:
                self.ff_jumps += 1
                self.ff_ticks += int(until) - self.now - 1
            self.now = int(until)
        return executed

    def _run_profiled(self, until: Optional[int],
                      max_events: Optional[int]) -> int:
        """Instrumented twin of :meth:`run` (identical event order)."""
        from time import perf_counter
        from repro.prof import owner_of
        prof = self.profile
        data = prof.by_owner
        t_loop = perf_counter()
        in_events = 0.0
        if max_events is not None and max_events < 1:
            max_events = 1
        executed = 0
        self._stop = False
        buckets = self._buckets
        times = self._times
        heappop = heapq.heappop
        no_arg = _NO_ARG
        try:
            while times:
                if self._cancelled > _COMPACT_MIN:
                    prof.compactions_before = self._cancelled
                    self._maybe_compact()
                    if not times:
                        break
                t = times[0]
                if until is not None and t > until:
                    if until > self.now + 1:
                        self.ff_jumps += 1
                        self.ff_ticks += until - self.now - 1
                    self.now = until
                    return executed
                heappop(times)
                bucket = buckets[t]
                if t > self.now + 1:
                    self.ff_jumps += 1
                    self.ff_ticks += t - self.now - 1
                self.now = t
                i = 0
                ncancelled = 0
                while i < len(bucket):
                    ev = bucket[i]
                    i += 1
                    if ev.cancelled:
                        ncancelled += 1
                        prof.cancelled_seen += 1
                        continue
                    self._live -= 1
                    ev.sim = None
                    arg = ev.arg
                    key = owner_of(ev.fn)
                    t0 = perf_counter()
                    if arg is no_arg:
                        ev.fn()
                    else:
                        ev.fn(arg)
                    dt = perf_counter() - t0
                    in_events += dt
                    cell = data.get(key)
                    if cell is None:
                        data[key] = [1, dt]
                    else:
                        cell[0] += 1
                        cell[1] += dt
                    executed += 1
                    if self._stop or executed == max_events:
                        del bucket[:i]
                        self._size -= i
                        self._cancelled -= ncancelled
                        if bucket:
                            heapq.heappush(times, t)
                        else:
                            del buckets[t]
                        return executed
                self._size -= i
                self._cancelled -= ncancelled
                del buckets[t]
            if (until is not None and not self._stop and self.now < until):
                if until > self.now + 1:
                    self.ff_jumps += 1
                    self.ff_ticks += int(until) - self.now - 1
                self.now = int(until)
            return executed
        finally:
            prof.events += executed
            prof.event_time += in_events
            prof.run_time += perf_counter() - t_loop


class ReferenceSimulator:
    """The pre-calendar-queue kernel: one global binary heap of events.

    Kept verbatim (modulo the ``at_call``/``after_call`` extension, which
    the rest of the package now schedules through) as the golden
    reference: the equivalence tests prove the calendar-queue kernel
    executes events in exactly this kernel's ``(time, seq)`` order, and
    ``scripts/bench_kernel.py`` measures speedup against it.
    """

    def __init__(self) -> None:
        self.now: int = 0
        self._queue: list[Event] = []
        self._seq: int = 0
        self._stop = False

    def at(self, time: int, fn: Callable[[], None]) -> Event:
        if time < self.now:
            raise ValueError(f"schedule in the past: {time} < {self.now}")
        self._seq += 1
        ev = Event(int(time), self._seq, fn, _NO_ARG, None)
        heapq.heappush(self._queue, ev)
        return ev

    def after(self, delay: int, fn: Callable[[], None]) -> Event:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        return self.at(self.now + int(delay), fn)

    def at_call(self, time: int, fn: Callable[[Any], None],
                arg: Any) -> Event:
        if time < self.now:
            raise ValueError(f"schedule in the past: {time} < {self.now}")
        self._seq += 1
        ev = Event(int(time), self._seq, fn, arg, None)
        heapq.heappush(self._queue, ev)
        return ev

    def after_call(self, delay: int, fn: Callable[[Any], None],
                   arg: Any) -> Event:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        return self.at_call(self.now + int(delay), fn, arg)

    def pending(self) -> int:
        return sum(1 for ev in self._queue if not ev.cancelled)

    def stop(self) -> None:
        self._stop = True

    def enable_profiling(self):
        raise NotImplementedError(
            "profiling is a calendar-queue kernel feature")

    def run(self, until: Optional[int] = None,
            max_events: Optional[int] = None) -> int:
        queue = self._queue
        executed = 0
        self._stop = False
        no_arg = _NO_ARG
        while queue:
            ev = heapq.heappop(queue)
            if ev.cancelled:
                continue
            if until is not None and ev.time > until:
                heapq.heappush(queue, ev)  # put it back for a later run()
                self.now = until
                break
            self.now = ev.time
            if ev.arg is no_arg:
                ev.fn()
            else:
                ev.fn(ev.arg)
            executed += 1
            if self._stop:
                break
            if max_events is not None and executed >= max_events:
                break
        if (until is not None and not queue and not self._stop
                and self.now < until):
            self.now = int(until)
        return executed
