"""Result harvesting and the paper's performance metrics.

* CPU mixes: *weighted speedup* — sum over apps of IPC_shared/IPC_alone
  (Section V-B), reported normalised to the baseline policy.
* GPU: average frame rate over the rendered sequence (warm-up frame
  excluded).
* Figs. 10-11 metrics: LLC miss counts per side, DRAM read/write bytes
  per side.
* Fig. 14 metric: equal-weight geometric combination of the normalised
  CPU and GPU performance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.system import HeterogeneousSystem


@dataclass
class RunResult:
    """Everything a figure/table needs from one simulation run."""

    mix_name: str
    policy_name: str
    scale_name: str
    ticks: int
    cpu_apps: tuple[int, ...]
    cpu_ipcs: dict[int, float]
    gpu_app: Optional[str]
    fps: float
    frames_rendered: int
    frame_cycles: list[int]
    llc: dict[str, int]
    dram: dict[str, int]
    dram_gpu_read_bytes: int
    dram_gpu_write_bytes: int
    dram_cpu_read_bytes: int
    dram_cpu_write_bytes: int
    dram_row_hit_rate: float
    gpu_stats: dict[str, int] = field(default_factory=dict)
    gpu_texture_share: float = 0.0
    qos: dict[str, float] = field(default_factory=dict)
    frpu_errors: list[float] = field(default_factory=list)
    #: frame-time predictor behind the FRPU seam ('' when the policy
    #: has no QoS controller); see docs/predictors.md
    predictor: str = ""
    #: per-prediction samples (frame index, predicted cycles, actual
    #: natural cycles) — the raw material of the compare-predictors
    #: accuracy tables; frpu_errors is the derived percent series
    prediction_log: list[tuple[int, float, float]] = \
        field(default_factory=list)
    #: always-on per-side LLC read round-trip latency (created_at ->
    #: data return, ticks): {cpu,gpu}_{mean,p95,n} — see
    #: SharedLLC.rt_summary; analysis/tables.py renders these
    llc_latency: dict[str, float] = field(default_factory=dict)

    @property
    def cpu_llc_misses(self) -> int:
        return self.llc.get("cpu_misses", 0)

    @property
    def gpu_llc_misses(self) -> int:
        return self.llc.get("gpu_misses", 0)

    @property
    def gpu_dram_bytes(self) -> int:
        return self.dram_gpu_read_bytes + self.dram_gpu_write_bytes


def collect(system: "HeterogeneousSystem") -> RunResult:
    """Harvest a finished system into a :class:`RunResult`."""
    gpu = system.gpu
    qos_stats: dict[str, float] = {}
    errors: list[float] = []
    predictor = ""
    prediction_log: list[tuple[int, float, float]] = []
    qos = getattr(system.policy, "qos", None)
    if qos is not None:
        qos_stats = {k: float(v) for k, v in qos.stats.snapshot().items()}
        qos_stats["frames_learned"] = qos.frpu.frames_learned
        qos_stats["frames_predicted"] = qos.frpu.frames_predicted
        errors = qos.frpu.percent_errors()
        predictor = qos.frpu.name
        prediction_log = list(qos.frpu.error_log)
    return RunResult(
        mix_name=system.mix.name,
        policy_name=system.policy.name,
        scale_name=system.cfg.scale.name,
        ticks=system.sim.now,
        cpu_apps=system.mix.cpu_apps,
        cpu_ipcs=system.cpu_ipcs(),
        gpu_app=system.mix.gpu_app,
        fps=system.gpu_fps(),
        frames_rendered=gpu.frames_completed if gpu else 0,
        frame_cycles=[f.cycles for f in gpu.completed_frames] if gpu else [],
        llc=system.llc.stats.snapshot(),
        dram=system.dram.snapshot(),
        dram_gpu_read_bytes=system.dram.bytes_served("gpu", False),
        dram_gpu_write_bytes=system.dram.bytes_served("gpu", True),
        dram_cpu_read_bytes=system.dram.bytes_served("cpu", False),
        dram_cpu_write_bytes=system.dram.bytes_served("cpu", True),
        dram_row_hit_rate=system.dram.row_hit_rate(),
        gpu_stats=gpu.stats.snapshot() if gpu else {},
        gpu_texture_share=gpu.texture_share() if gpu else 0.0,
        qos=qos_stats,
        frpu_errors=errors,
        predictor=predictor,
        prediction_log=prediction_log,
        llc_latency=system.llc.rt_summary(),
    )


def weighted_speedup(result: RunResult,
                     alone_ipcs: dict[int, float]) -> float:
    """Sum over apps of IPC_shared / IPC_alone.

    ``alone_ipcs`` maps SPEC id -> standalone IPC at the same scale.
    """
    total = 0.0
    for i, spec_id in enumerate(result.cpu_apps):
        alone = alone_ipcs[spec_id]
        if alone <= 0:
            raise ValueError(f"standalone IPC for {spec_id} is {alone}")
        total += result.cpu_ipcs[i] / alone
    return total


def geomean(values) -> float:
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def combined_performance(cpu_norm: float, gpu_norm: float) -> float:
    """Fig. 14's equal-weight CPU+GPU metric (geometric mean of the two
    normalised performances)."""
    return geomean([cpu_norm, gpu_norm])
