"""Lightweight statistics primitives shared by every component.

All simulator components expose their measurements through a
:class:`StatSet` so results can be harvested uniformly by
:mod:`repro.sim.metrics` and snapshotted/diffed between run phases
(warm-up vs measurement).
"""

from __future__ import annotations

from typing import Iterator


class Counter:
    """A named monotonically increasing integer counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: int = 0):
        self.name = name
        self.value = value

    def inc(self, by: int = 1) -> None:
        self.value += by

    def reset(self) -> None:
        self.value = 0

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Accumulator:
    """Running sum / count / min / max of an integer-valued sample."""

    __slots__ = ("name", "n", "total", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.n = 0
        self.total = 0
        self.min: int | None = None
        self.max: int | None = None

    def add(self, sample: int) -> None:
        self.n += 1
        self.total += sample
        if self.min is None or sample < self.min:
            self.min = sample
        if self.max is None or sample > self.max:
            self.max = sample

    @property
    def mean(self) -> float:
        return self.total / self.n if self.n else 0.0

    def reset(self) -> None:
        self.n = 0
        self.total = 0
        self.min = None
        self.max = None

    def __repr__(self) -> str:
        return (f"Accumulator({self.name}: n={self.n}, mean={self.mean:.2f},"
                f" min={self.min}, max={self.max})")


class StatSet:
    """A named bag of counters/accumulators with snapshot support."""

    def __init__(self, owner: str):
        self.owner = owner
        self._counters: dict[str, Counter] = {}
        self._accs: dict[str, Accumulator] = {}

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def accumulator(self, name: str) -> Accumulator:
        a = self._accs.get(name)
        if a is None:
            a = self._accs[name] = Accumulator(name)
        return a

    def counters(self) -> Iterator[Counter]:
        return iter(self._counters.values())

    def accumulators(self) -> Iterator[Accumulator]:
        return iter(self._accs.values())

    def get(self, name: str) -> int:
        c = self._counters.get(name)
        return c.value if c is not None else 0

    def snapshot(self) -> dict[str, int]:
        """All integer stats: counter values plus, per accumulator,
        ``<name>_n`` / ``<name>_total``.

        Accumulators used to be dropped here, which silently hid e.g.
        the DRAM queueing-latency accumulators from metrics harvesting.
        Only the summable fields are exposed (``n``/``total``), so
        snapshots of sharded components can be added and :meth:`diff`'d;
        derive a mean as ``total / n`` or use :meth:`as_dict`.
        """
        out = {k: c.value for k, c in self._counters.items()}
        for k, a in self._accs.items():
            out[f"{k}_n"] = a.n
            out[f"{k}_total"] = a.total
        return out

    def diff(self, base: dict[str, int]) -> dict[str, int]:
        """Stat deltas since ``base`` (a prior :meth:`snapshot`)."""
        return {k: v - base.get(k, 0) for k, v in self.snapshot().items()}

    def reset(self) -> None:
        for c in self._counters.values():
            c.reset()
        for a in self._accs.values():
            a.reset()

    def as_dict(self) -> dict:
        """:meth:`snapshot` plus derived per-accumulator ``<name>_mean``
        (float) and ``<name>_min`` / ``<name>_max`` (when any sample was
        recorded)."""
        out: dict = self.snapshot()
        for k, a in self._accs.items():
            # guard here too: an accumulator subclass overriding `mean`
            # without the n==0 guard must not crash result harvesting
            out[f"{k}_mean"] = a.total / a.n if a.n else 0.0
            if a.n:
                out[f"{k}_min"] = a.min
                out[f"{k}_max"] = a.max
        return out

    def __repr__(self) -> str:
        return f"StatSet({self.owner}: {self.snapshot()})"
