"""Shader-core occupancy model.

The pipeline models the GPU at the memory-transaction level; this
module reconstructs the *shader-side* view CM-BAL reasons about — how
many warp contexts are ready vs blocked on memory — from the pipeline's
observable counters, per Table I's machine (64 cores x 64 contexts).

An outstanding LLC fill blocks roughly one warp (the paper's GPU blocks
a context on issuing a texture load); MSHR-full stalls mean the front
end itself is blocked, i.e. *zero* ready warps at that instant.  The
estimator samples those signals into a ready-warp average per window,
which is exactly the statistic CM-BAL's controller consumes.
"""

from __future__ import annotations

from repro.config import GpuConfig
from repro.gpu.pipeline import GpuPipeline


class WarpOccupancyModel:
    """Windowed ready-warp estimation over a live pipeline."""

    def __init__(self, pipeline: GpuPipeline,
                 cfg: GpuConfig | None = None):
        self.pipeline = pipeline
        self.cfg = cfg or GpuConfig()
        #: warps resident per shader core at full concurrency
        self.max_warps = (self.cfg.max_thread_contexts //
                          max(self.cfg.shader_cores, 1))
        self._last_stalls = 0
        self._last_reads = 0
        self.samples: list[float] = []

    def ready_warps_now(self) -> float:
        """Instantaneous estimate of ready warps per core."""
        blocked = self.pipeline.outstanding / max(self.cfg.shader_cores,
                                                  1)
        return max(self.max_warps - blocked, 0.0)

    def sample_window(self) -> dict[str, float]:
        """Close a window: ready-warp average + front-end stall rate."""
        stalls = self.pipeline.stats.get("mshr_stalls")
        reads = self.pipeline.stats.get("llc_reads")
        d_stalls = stalls - self._last_stalls
        d_reads = reads - self._last_reads
        self._last_stalls, self._last_reads = stalls, reads
        stall_rate = d_stalls / d_reads if d_reads > 0 else 0.0
        # a stalled front end has no ready warps for the stall's span
        ready = self.ready_warps_now() * max(1.0 - stall_rate, 0.0)
        self.samples.append(ready)
        return {"ready_warps": ready, "stall_rate": stall_rate,
                "reads": float(d_reads)}

    def average_ready_warps(self) -> float:
        if not self.samples:
            return float(self.max_warps)
        return sum(self.samples) / len(self.samples)
