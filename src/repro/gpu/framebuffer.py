"""Render target geometry and procedural frame-work generation.

A frame is rendered as a sequence of *render-target planes* (RTPs): full
coverage passes over the render target's tiles (RTTs), exactly the
structure the FRPU's RTP table observes (paper Fig. 5).  Each tile update
carries a generated access list (texture/depth/colour/vertex) plus a
compute budget; the pipeline walks these through the GPU-internal caches.

Footprints are real-sized (multi-MB colour/depth/texture buffers); the
scale preset only shrinks *how many* tiles are touched per frame (a
representative sample from a persistent active-tile set, so cross-RTP and
cross-frame reuse is preserved).
"""

from __future__ import annotations

import numpy as np

from repro.config import LINE_BYTES
from repro.gpu.workloads import GameWorkload

#: access-kind codes used in tile work arrays
KIND_TEX, KIND_DEPTH, KIND_COLOR, KIND_VERTEX = 0, 1, 2, 3
KIND_ZHIER, KIND_SHADERI = 4, 5
KIND_NAMES = {KIND_TEX: "texture", KIND_DEPTH: "depth",
              KIND_COLOR: "color", KIND_VERTEX: "vertex",
              KIND_ZHIER: "zhier", KIND_SHADERI: "shader_i"}

TILE_PX = 16                        # t x t render-target tiles
BYTES_PER_PIXEL = 4


class RenderTarget:
    """Address geometry of the colour + depth buffers."""

    def __init__(self, workload: GameWorkload, base_addr: int):
        self.workload = workload
        self.width = workload.width
        self.height = workload.height
        self.tiles_x = self.width // TILE_PX
        self.tiles_y = self.height // TILE_PX
        self.n_tiles = self.tiles_x * self.tiles_y
        row_bytes = self.width * BYTES_PER_PIXEL
        self.buffer_bytes = row_bytes * self.height
        self.color_base = base_addr
        self.depth_base = base_addr + self._round(self.buffer_bytes)
        self.end_addr = self.depth_base + self._round(self.buffer_bytes)
        # one 16x16 tile = 16 rows x 64B = 16 lines per buffer
        self._tile_lines = (TILE_PX * TILE_PX * BYTES_PER_PIXEL) \
            // LINE_BYTES
        self._row_bytes = row_bytes

    @staticmethod
    def _round(n: int) -> int:
        return (n + 0xFFFF) & ~0xFFFF

    def tile_lines(self, tile: int, base: int) -> np.ndarray:
        """Line addresses of one tile in the buffer at ``base``."""
        ty, tx = divmod(tile, self.tiles_x)
        x_byte = tx * TILE_PX * BYTES_PER_PIXEL
        rows = np.arange(TILE_PX, dtype=np.int64)
        addrs = base + (ty * TILE_PX + rows) * self._row_bytes + x_byte
        return addrs & ~(LINE_BYTES - 1)

    def color_lines(self, tile: int) -> np.ndarray:
        return self.tile_lines(tile, self.color_base)

    def depth_lines(self, tile: int) -> np.ndarray:
        return self.tile_lines(tile, self.depth_base)


class TileWork:
    """One RTT update: ordered accesses + compute budget."""

    __slots__ = ("tile", "kinds", "addrs", "writes", "compute_ticks",
                 "updates")

    def __init__(self, tile: int, kinds: np.ndarray, addrs: np.ndarray,
                 writes: np.ndarray, compute_ticks: int, updates: int = 1):
        self.tile = tile
        self.kinds = kinds
        self.addrs = addrs
        self.writes = writes
        self.compute_ticks = compute_ticks
        self.updates = updates

    @property
    def n_accesses(self) -> int:
        return len(self.kinds)


class RtpWork:
    """One render-target plane: a batch of tile updates."""

    __slots__ = ("index", "tiles")

    def __init__(self, index: int, tiles: list[TileWork]):
        self.index = index
        self.tiles = tiles

    @property
    def n_tiles(self) -> int:
        return len(self.tiles)

    @property
    def updates(self) -> int:
        return sum(t.updates for t in self.tiles)


class FrameDescription:
    """All RTPs of one frame."""

    __slots__ = ("index", "rtps")

    def __init__(self, index: int, rtps: list[RtpWork]):
        self.index = index
        self.rtps = rtps

    @property
    def n_rtps(self) -> int:
        return len(self.rtps)

    def total_accesses(self) -> int:
        return sum(t.n_accesses for r in self.rtps for t in r.tiles)


class FrameGenerator:
    """Procedurally generates frames for one game, deterministically.

    Memory layout (all within the GPU's address region):
    colour buffer | depth buffer | texture atlas | vertex buffers.
    """

    def __init__(self, workload: GameWorkload, gpu_frame_cycles: int,
                 base_addr: int, seed: int, gpu_cycle_ticks: int = 4,
                 mem_scale: int = 1):
        self.workload = workload
        self.gpu_frame_cycles = gpu_frame_cycles
        self.gpu_cycle_ticks = gpu_cycle_ticks
        self.mem_scale = max(mem_scale, 1)
        self.rng = np.random.default_rng(seed)
        self.rt = RenderTarget(workload, base_addr)
        self.tex_base = self.rt.end_addr
        tex_bytes = max(workload.texture_bytes // self.mem_scale,
                        256 * 1024)
        self.tex_lines = max(tex_bytes // LINE_BYTES, 64)
        self.vertex_base = self.tex_base + tex_bytes
        self.vertex_bytes = max(8 * 1024 * 1024 // self.mem_scale,
                                256 * 1024)
        # hierarchical-depth buffer: 1/16th of the depth buffer, and the
        # shader program code region
        self.zhier_base = self.vertex_base + self.vertex_bytes
        self.zhier_bytes = max(self.rt.buffer_bytes // 16, LINE_BYTES * 16)
        self.shader_code_base = self.zhier_base + self.zhier_bytes
        self.shader_code_bytes = 64 * 1024
        self.end_addr = self.shader_code_base + self.shader_code_bytes
        self._vertex_cursor = 0

        # how many tiles one frame touches: the design-point access budget
        # divided by per-tile work, split across RTPs
        per_tile = workload.accesses_per_tile()
        budget = workload.llc_intensity * gpu_frame_cycles
        self.tiles_per_rtp = max(int(budget / (workload.n_rtp * per_tile)), 4)
        # persistent active set, 4x a single RTP's tiles, spread over the RT
        n_active = min(self.tiles_per_rtp * 4, self.rt.n_tiles)
        self.active_tiles = np.sort(self.rng.choice(
            self.rt.n_tiles, size=n_active, replace=False))
        # per-tile texture neighbourhood (a cluster in the atlas)
        self._tile_tex_base = self.rng.integers(
            0, max(self.tex_lines - 64, 1), size=n_active)
        # compute budget per tile so that sum(compute) = compute_frac*frame
        total_tiles = self.tiles_per_rtp * workload.n_rtp
        self.compute_per_tile_ticks = max(int(
            workload.compute_frac * gpu_frame_cycles * gpu_cycle_ticks
            / total_tiles), 1)

    # -- access-pattern helpers -----------------------------------------

    #: fraction of texture taps inside the tile's atlas neighbourhood
    TEX_LOCAL_FRAC = 0.92
    #: atlas neighbourhood size in lines (2 KB per tile)
    TEX_LOCAL_LINES = 32

    def _texture_addrs(self, active_idx: int, n: int) -> np.ndarray:
        """Most taps fall in the tile's atlas neighbourhood (bilinear
        taps of adjacent fragments share lines); the rest scatter over
        the whole atlas (mip levels, far LODs) — those are the GPU's
        DRAM-bound texture traffic."""
        rng = self.rng
        base = int(self._tile_tex_base[active_idx])
        local = base + rng.integers(0, self.TEX_LOCAL_LINES, size=n)
        far = rng.integers(0, self.tex_lines, size=n)
        lines = np.where(rng.random(n) < self.TEX_LOCAL_FRAC, local, far) \
            % self.tex_lines
        return self.tex_base + lines * LINE_BYTES

    def _vertex_addrs(self, n: int) -> np.ndarray:
        lines = self.vertex_bytes // LINE_BYTES
        idx = (self._vertex_cursor + np.arange(n, dtype=np.int64)) % lines
        self._vertex_cursor = int((self._vertex_cursor + n) % lines)
        return self.vertex_base + idx * LINE_BYTES

    def _tile_work(self, active_idx: int, hot: bool) -> TileWork:
        w = self.workload
        rng = self.rng
        tile = int(self.active_tiles[active_idx])
        mult = 2 if hot else 1
        n_tex = w.tex_per_tile * mult
        n_depth = w.depth_per_tile * mult
        n_color = w.color_per_tile * mult
        n_vert = w.vertex_per_tile

        color_lines = self.rt.color_lines(tile)
        depth_lines = self.rt.depth_lines(tile)
        # depth: test-then-update walk over the tile's lines (reads, ~45%
        # also update); colour: blends/writes dominate (~75% writes)
        depth_addrs = depth_lines[rng.integers(0, len(depth_lines), n_depth)]
        color_addrs = color_lines[rng.integers(0, len(color_lines), n_color)]
        tex_addrs = self._texture_addrs(active_idx, n_tex)
        vert_addrs = self._vertex_addrs(n_vert)

        # one hierarchical-depth probe and one shader i-fetch per update
        zhier_addr = self.zhier_base + (
            (tile * LINE_BYTES) % self.zhier_bytes) // LINE_BYTES \
            * LINE_BYTES
        shader_addr = self.shader_code_base + int(rng.integers(
            0, self.shader_code_bytes // LINE_BYTES)) * LINE_BYTES

        kinds = np.concatenate([
            np.full(1, KIND_ZHIER, dtype=np.int8),
            np.full(1, KIND_SHADERI, dtype=np.int8),
            np.full(n_vert, KIND_VERTEX, dtype=np.int8),
            np.full(n_tex, KIND_TEX, dtype=np.int8),
            np.full(n_depth, KIND_DEPTH, dtype=np.int8),
            np.full(n_color, KIND_COLOR, dtype=np.int8)])
        addrs = np.concatenate([
            np.array([zhier_addr, shader_addr], dtype=np.int64),
            vert_addrs, tex_addrs, depth_addrs, color_addrs])
        writes = np.concatenate([
            np.zeros(2 + n_vert, dtype=bool),
            np.zeros(n_tex, dtype=bool),
            rng.random(n_depth) < 0.45,
            rng.random(n_color) < 0.75])
        compute = self.compute_per_tile_ticks * mult
        return TileWork(tile, kinds, addrs, writes, compute,
                        updates=mult)

    # -- frame generation --------------------------------------------------

    def next_frame(self, index: int) -> FrameDescription:
        w = self.workload
        rng = self.rng
        jitter = float(np.clip(rng.normal(1.0, w.frame_jitter), 0.7, 1.4))
        n_tiles = max(int(self.tiles_per_rtp * jitter), 2)
        n_active = len(self.active_tiles)
        rtps = []
        for r in range(w.n_rtp):
            # each RTP covers a window of the active set (scene coherence:
            # consecutive RTPs revisit mostly the same tiles)
            start = int(rng.integers(0, n_active))
            sel = (start + np.arange(n_tiles)) % n_active
            hot = rng.random(n_tiles) < w.hot_tile_frac
            tiles = [self._tile_work(int(sel[i]), bool(hot[i]))
                     for i in range(n_tiles)]
            rtps.append(RtpWork(r, tiles))
        return FrameDescription(index, rtps)
