"""A DirectX/OpenGL-like frame command stream: record and replay.

The paper replays API traces of real games through the Attila
simulator.  This module defines the reproduction's own *frame command
stream* format so workloads can be serialised, shared, inspected, and
replayed exactly — the same workflow, one level up from the
:mod:`repro.tracing` memory traces.

Format (JSON-lines, one command per line)::

    {"cmd": "frame",  "index": 0}
    {"cmd": "pass",   "rtp": 0}
    {"cmd": "draw",   "tile": 123, "updates": 2, "compute": 380,
     "accesses": {"kinds": "...b64...", "addrs": "...b64...",
                  "writes": "...b64..."}}
    {"cmd": "present"}

``record_frames`` captures any frame generator's output;
``ApiTraceFrameGenerator`` replays a recorded stream as a drop-in frame
source for :class:`~repro.gpu.pipeline.GpuPipeline` (wrapping at the
end, so a short capture can drive an arbitrarily long run).
"""

from __future__ import annotations

import base64
import json
from pathlib import Path
from typing import Iterable

import numpy as np

from repro.gpu.framebuffer import (FrameDescription, RtpWork, TileWork)


def _enc(arr: np.ndarray) -> str:
    return base64.b64encode(np.ascontiguousarray(arr).tobytes()).decode()


def _dec(s: str, dtype) -> np.ndarray:
    return np.frombuffer(base64.b64decode(s), dtype=dtype).copy()


def frame_to_commands(frame: FrameDescription) -> Iterable[dict]:
    yield {"cmd": "frame", "index": frame.index}
    for rtp in frame.rtps:
        yield {"cmd": "pass", "rtp": rtp.index}
        for t in rtp.tiles:
            yield {"cmd": "draw", "tile": t.tile, "updates": t.updates,
                   "compute": t.compute_ticks,
                   "accesses": {"kinds": _enc(t.kinds),
                                "addrs": _enc(t.addrs),
                                "writes": _enc(t.writes)}}
    yield {"cmd": "present"}


def record_frames(generator, n_frames: int, path: str) -> int:
    """Capture ``n_frames`` from any frame generator into a trace file.

    Returns the number of commands written.
    """
    n_cmds = 0
    with open(path, "w", encoding="utf-8") as fh:
        for i in range(n_frames):
            frame = generator.next_frame(i)
            for cmd in frame_to_commands(frame):
                fh.write(json.dumps(cmd) + "\n")
                n_cmds += 1
    return n_cmds


def load_frames(path: str) -> list[FrameDescription]:
    """Parse a trace file back into frame descriptions."""
    frames: list[FrameDescription] = []
    rtps: list[RtpWork] = []
    tiles: list[TileWork] = []
    index = 0
    rtp_index = 0

    def close_rtp():
        nonlocal tiles
        if tiles:
            rtps.append(RtpWork(rtp_index, tiles))
            tiles = []

    for line in Path(path).read_text(encoding="utf-8").splitlines():
        cmd = json.loads(line)
        op = cmd["cmd"]
        if op == "frame":
            index = cmd["index"]
        elif op == "pass":
            close_rtp()
            rtp_index = cmd["rtp"]
        elif op == "draw":
            acc = cmd["accesses"]
            tiles.append(TileWork(
                cmd["tile"],
                _dec(acc["kinds"], np.int8),
                _dec(acc["addrs"], np.int64),
                _dec(acc["writes"], bool),
                cmd["compute"], cmd["updates"]))
        elif op == "present":
            close_rtp()
            frames.append(FrameDescription(index, rtps))
            rtps = []
        else:
            raise ValueError(f"unknown command {op!r}")
    return frames


class ApiTraceFrameGenerator:
    """Drop-in frame source replaying a recorded command stream.

    Wraps around at the end of the recording (re-presenting the captured
    sequence), like looping a captured game region.
    """

    def __init__(self, path: str):
        self.frames = load_frames(path)
        if not self.frames:
            raise ValueError(f"trace {path!r} contains no frames")
        self.replays = 0

    def next_frame(self, index: int) -> FrameDescription:
        src = self.frames[index % len(self.frames)]
        if index >= len(self.frames):
            self.replays += 1
        return FrameDescription(index, src.rtps)
