"""GPU-internal cache hierarchy (Table I) as a functional filter.

Every generated access walks the hierarchy for its kind; what misses at
the innermost shared level becomes an LLC-bound read, and dirty ROP
evictions become LLC-bound writes.  Colour write misses allocate dirty
*without* fetching (full-line overwrite — paper footnote 6: the ROP can
"create fully dirty colour or depth lines ... and later flush them out to
the LLC for allocation without doing a DRAM read"), which is why writes
can outnumber reads for ROP-heavy games.

Simplifications (documented in DESIGN.md): the per-sampler texture L0s
and per-ROP depth/colour L1s are modelled as single aggregate caches of
the same total capacity, and all internal levels use 64 B lines so that
internal and LLC line granularity match.
"""

from __future__ import annotations

from dataclasses import replace

from repro.config import GpuCachesConfig, LINE_BYTES
from repro.gpu.framebuffer import (KIND_COLOR, KIND_DEPTH, KIND_SHADERI,
                                   KIND_TEX, KIND_VERTEX, KIND_ZHIER)
from repro.mem.cache import Cache
from repro.sim.stats import StatSet


def _mk(cfg, mem_scale: int = 1) -> Cache:
    """Build an internal cache with 64 B lines.

    Capacities of the larger internal caches shrink by ``mem_scale``
    (same preset scaling as the LLC), floored at 2 KB; geometry is
    re-derived so the set count stays a power of two.
    """
    size = cfg.size_bytes
    if mem_scale > 1 and size > 16 * 1024:
        size = max(size // mem_scale, 2 * 1024)
    ways = max(min(cfg.ways, 64), 2)
    lines = size // LINE_BYTES
    ways = min(ways, lines)
    sets = 1
    while sets * 2 * ways <= lines:
        sets *= 2
    c = replace(cfg, line_bytes=LINE_BYTES, ways=ways,
                size_bytes=sets * ways * LINE_BYTES)
    return Cache(c)


class GpuCacheHierarchy:
    """Functional filter: access -> (needs LLC read?, writeback addrs)."""

    def __init__(self, cfg: GpuCachesConfig, mem_scale: int = 1):
        self.tex_l0 = _mk(cfg.tex_l0)
        self.tex_l1 = _mk(cfg.tex_l1, mem_scale)
        self.tex_l2 = _mk(cfg.tex_l2, mem_scale)
        self.depth_l1 = _mk(cfg.depth_l1)
        self.depth_l2 = _mk(cfg.depth_l2, mem_scale)
        self.color_l1 = _mk(cfg.color_l1)
        self.color_l2 = _mk(cfg.color_l2, mem_scale)
        self.vertex = _mk(cfg.vertex)
        self.zhier = _mk(cfg.zhier)
        self.shader_i = _mk(cfg.shader_i, mem_scale)
        self.stats = StatSet("gpu_caches")
        self._filtered = self.stats.counter("internal_hits")
        self._llc_reads = self.stats.counter("llc_reads")
        self._llc_writes = self.stats.counter("llc_writebacks")

    # -- per-kind walks ----------------------------------------------------

    def _read_chain(self, addr: int, *levels: Cache) -> bool:
        """Read through a multi-level read-only chain.

        Returns True if an LLC read is needed (missed everywhere).
        Misses allocate at every level on the way (fill-on-return).
        """
        for lvl in levels:
            if lvl.lookup(addr) is not None:
                self._filtered.inc()
                return False
        for lvl in levels:
            lvl.allocate(addr, owner="gpu")
        self._llc_reads.inc()
        return True

    def _rop_access(self, addr: int, write: bool, l1: Cache, l2: Cache,
                    kind: str,
                    write_allocate_no_fetch: bool) -> tuple[bool, list]:
        """Depth/colour read-modify-write path with dirty writebacks."""
        wbs: list[tuple[int, str]] = []
        line = l1.lookup(addr, write=write)
        if line is not None:
            self._filtered.inc()
            return False, wbs
        l2_line = l2.lookup(addr, write=write)
        if l2_line is not None:
            self._filtered.inc()
            ev = l1.allocate(addr, write=write, owner="gpu", kind=kind)
            if ev is not None and ev.dirty:
                # L1 victim folds into L2 (both internal)
                l2.allocate(ev.addr, write=True, owner="gpu", kind=kind)
            return False, wbs
        # missed the internal hierarchy
        ev2 = l2.allocate(addr, write=write, owner="gpu", kind=kind)
        if ev2 is not None and ev2.dirty:
            wbs.append((ev2.addr, kind))
            self._llc_writes.inc()
        ev1 = l1.allocate(addr, write=write, owner="gpu", kind=kind)
        if ev1 is not None and ev1.dirty:
            l2_ev = self._fold_into_l2(l2, ev1.addr, kind)
            if l2_ev is not None:
                wbs.append(l2_ev)
        if write and write_allocate_no_fetch:
            return False, wbs        # full-line overwrite: no fetch
        self._llc_reads.inc()
        return True, wbs

    def _fold_into_l2(self, l2: Cache, addr: int, kind: str):
        ev = l2.allocate(addr, write=True, owner="gpu", kind=kind)
        if ev is not None and ev.dirty:
            self._llc_writes.inc()
            return (ev.addr, kind)
        return None

    # -- public entry point -------------------------------------------------

    def access(self, kind: int, addr: int,
               write: bool) -> tuple[bool, list[tuple[int, str]]]:
        """Returns ``(llc_read_needed, [(writeback_addr, kind), ...])``."""
        if kind == KIND_TEX:
            return self._read_chain(addr, self.tex_l0, self.tex_l1,
                                    self.tex_l2), []
        if kind == KIND_DEPTH:
            return self._rop_access(addr, write, self.depth_l1,
                                    self.depth_l2, "depth",
                                    write_allocate_no_fetch=False)
        if kind == KIND_COLOR:
            return self._rop_access(addr, write, self.color_l1,
                                    self.color_l2, "color",
                                    write_allocate_no_fetch=True)
        if kind == KIND_VERTEX:
            return self._read_chain(addr, self.vertex), []
        if kind == KIND_ZHIER:
            return self._read_chain(addr, self.zhier), []
        if kind == KIND_SHADERI:
            return self._read_chain(addr, self.shader_i), []
        raise ValueError(f"unknown GPU access kind {kind}")

    def flush_rop(self) -> list[tuple[int, str]]:
        """End-of-frame flush of dirty ROP lines (footnote 6 behaviour)."""
        wbs: list[tuple[int, str]] = []
        for cache, kind in ((self.color_l1, "color"),
                            (self.color_l2, "color"),
                            (self.depth_l1, "depth"),
                            (self.depth_l2, "depth")):
            for s in cache._sets:
                for ln in s.values():
                    if ln.dirty:
                        ln.dirty = False
                        wbs.append((cache.addr_of(ln.tag), kind))
                        self._llc_writes.inc()
        return wbs
