"""GPU substrate: rendering pipeline, internal caches, game workloads."""

from repro.gpu.workloads import GameWorkload, GAME_WORKLOADS, workload_for
from repro.gpu.framebuffer import RenderTarget, FrameDescription
from repro.gpu.pipeline import GpuPipeline

__all__ = ["GameWorkload", "GAME_WORKLOADS", "workload_for",
           "RenderTarget", "FrameDescription", "GpuPipeline"]
