"""Triangle-level geometry front end (alternative frame generator).

The default :class:`~repro.gpu.framebuffer.FrameGenerator` produces tile
work directly from calibrated budgets.  This module derives the same
tile work from an explicit geometry pipeline, the way the Attila
simulator's frames do:

1. **Scene** — a deterministic set of screen-space triangles per frame
   (object clusters with frame-to-frame coherence: the camera drifts, so
   most triangles move slightly between frames).
2. **Vertex stage** — each triangle fetches its three vertices from the
   vertex buffer (indexed, so shared vertices hit the vertex cache).
3. **Raster stage** — each triangle covers the render-target tiles its
   bounding box intersects; per covered tile it contributes fragments.
4. **Hierarchical-Z** — a depth-sorted fraction of fragments is rejected
   before shading (the zhier probe models the test's memory side).
5. **Fragment stage** — surviving fragments become texture/depth/colour
   accesses on the covered tile, reusing the same per-tile access
   generators as the default front end.

The triangle count is auto-calibrated so a frame's total access budget
matches the workload's ``llc_intensity * gpu_frame_cycles`` design
point — the two front ends are interchangeable for the experiments
(selected with ``SystemConfig.gpu_frontend = "geometry"``) and the
front-end ablation bench compares them.
"""

from __future__ import annotations

import numpy as np

from repro.config import LINE_BYTES
from repro.gpu.framebuffer import (FrameDescription, FrameGenerator,
                                   RtpWork, TILE_PX, TileWork,
                                   KIND_COLOR, KIND_DEPTH, KIND_SHADERI,
                                   KIND_TEX, KIND_VERTEX, KIND_ZHIER)
from repro.gpu.workloads import GameWorkload


class Scene:
    """Deterministic drifting-triangle scene for one game."""

    def __init__(self, workload: GameWorkload, n_triangles: int,
                 rng: np.random.Generator):
        self.w = workload
        self.n = n_triangles
        width, height = workload.width, workload.height
        # object clusters: triangles belong to objects; objects drift
        self.n_objects = max(n_triangles // 8, 1)
        self.obj_x = rng.uniform(0, width, self.n_objects)
        self.obj_y = rng.uniform(0, height, self.n_objects)
        self.obj_vx = rng.normal(0, 4.0, self.n_objects)
        self.obj_vy = rng.normal(0, 4.0, self.n_objects)
        self.tri_obj = rng.integers(0, self.n_objects, n_triangles)
        self.tri_dx = rng.normal(0, 40.0, n_triangles)
        self.tri_dy = rng.normal(0, 40.0, n_triangles)
        # triangle sizes: mostly small, a few large (log-normal-ish)
        self.tri_size = np.clip(
            rng.lognormal(np.log(TILE_PX), 0.8, n_triangles),
            4, TILE_PX * 6)
        self.tri_depth = rng.random(n_triangles)
        # indexed vertices: ~0.6 vertices per triangle are shared
        self.tri_vertex_idx = rng.integers(
            0, max(n_triangles * 2, 8), size=(n_triangles, 3))

    def advance(self) -> None:
        """One frame of camera/object drift (scene coherence)."""
        self.obj_x = (self.obj_x + self.obj_vx) % self.w.width
        self.obj_y = (self.obj_y + self.obj_vy) % self.w.height

    def triangle_positions(self) -> tuple[np.ndarray, np.ndarray]:
        x = (self.obj_x[self.tri_obj] + self.tri_dx) % self.w.width
        y = (self.obj_y[self.tri_obj] + self.tri_dy) % self.w.height
        return x, y


class GeometryFrameGenerator(FrameGenerator):
    """Frame generator driven by the triangle scene.

    Inherits the address-space layout and the per-tile access synthesis
    from :class:`FrameGenerator`; overrides *which* tiles a frame
    touches and how many updates each receives (triangle coverage).
    """

    #: fraction of covered-tile fragments rejected by hierarchical-Z
    ZHIER_REJECT = 0.25

    def __init__(self, workload: GameWorkload, gpu_frame_cycles: int,
                 base_addr: int, seed: int, gpu_cycle_ticks: int = 4,
                 mem_scale: int = 1):
        super().__init__(workload, gpu_frame_cycles, base_addr, seed,
                         gpu_cycle_ticks, mem_scale)
        # calibrate the triangle count to the same access budget:
        # expected covered tiles per triangle from the size distribution
        per_tile = workload.accesses_per_tile()
        budget_tiles = max(
            int(workload.llc_intensity * gpu_frame_cycles
                / (workload.n_rtp * per_tile)), 4) * workload.n_rtp
        self._budget_tiles = budget_tiles
        # initial guess from the size distribution (lognormal, mean
        # ~22 px -> ~2.4x2.4 tile bbox) times the mean per-tile update
        # multiplier of _geom_tile_work ...
        mean_tiles_per_tri = 6.0
        mean_update_mult = 1.5
        self.n_triangles = max(
            int(budget_tiles / (mean_tiles_per_tri * mean_update_mult)),
            8)
        self.scene = Scene(workload, self.n_triangles, self.rng)
        # ... then empirical correction: measure the update-weighted
        # coverage of the generated scene and rescale the triangle count
        # until the per-frame access budget matches the procedural front
        # end.  Coverage is nonlinear in triangle count (overlap, the
        # update-multiplier cap), hence the fixed-point iteration.
        # Deterministic: all RNG is seeded.
        survive = 1.0 - self.ZHIER_REJECT
        for _ in range(6):
            cov = self._cover()
            if not cov:
                break
            weighted = sum(min(max(round(u * survive), 1), 4)
                           for u in cov.values())
            # every RTP is a full pass over the covered set
            factor = budget_tiles / max(weighted * workload.n_rtp, 1)
            if 0.85 <= factor <= 1.18:
                break
            self.n_triangles = max(int(self.n_triangles * factor), 8)
            self.scene = Scene(workload, self.n_triangles, self.rng)

    # -- coverage ------------------------------------------------------------

    def _cover(self) -> dict[int, int]:
        """tile -> update count for the current scene state."""
        x, y, = self.scene.triangle_positions()
        size = self.scene.tri_size
        tiles: dict[int, int] = {}
        tx_max, ty_max = self.rt.tiles_x - 1, self.rt.tiles_y - 1
        x0 = np.clip((x - size / 2) // TILE_PX, 0, tx_max).astype(int)
        x1 = np.clip((x + size / 2) // TILE_PX, 0, tx_max).astype(int)
        y0 = np.clip((y - size / 2) // TILE_PX, 0, ty_max).astype(int)
        y1 = np.clip((y + size / 2) // TILE_PX, 0, ty_max).astype(int)
        for i in range(len(x)):
            for ty in range(y0[i], y1[i] + 1):
                row = ty * self.rt.tiles_x
                for tx in range(x0[i], x1[i] + 1):
                    t = row + tx
                    tiles[t] = tiles.get(t, 0) + 1
        return tiles

    def _geom_tile_work(self, tile: int, updates: int) -> TileWork:
        """Tile work from raster coverage: ``updates`` overlapping
        triangles, hierarchical-Z rejecting a share of the fragments."""
        w = self.workload
        rng = self.rng
        survive = max(1.0 - self.ZHIER_REJECT, 0.1)
        mult = min(max(int(round(updates * survive)), 1), 4)
        n_tex = w.tex_per_tile * mult
        n_depth = w.depth_per_tile * mult
        n_color = w.color_per_tile * mult
        n_vert = w.vertex_per_tile

        color_lines = self.rt.color_lines(tile)
        depth_lines = self.rt.depth_lines(tile)
        depth_addrs = depth_lines[rng.integers(0, len(depth_lines),
                                               n_depth)]
        color_addrs = color_lines[rng.integers(0, len(color_lines),
                                               n_color)]
        # texture neighbourhood keyed by tile id (stable across frames)
        tex_key = tile % len(self._tile_tex_base)
        tex_addrs = self._texture_addrs(tex_key, n_tex)
        vert_addrs = self._vertex_addrs(n_vert)
        zhier_addr = self.zhier_base + (
            (tile * LINE_BYTES) % self.zhier_bytes) // LINE_BYTES \
            * LINE_BYTES
        shader_addr = self.shader_code_base + int(rng.integers(
            0, self.shader_code_bytes // LINE_BYTES)) * LINE_BYTES

        kinds = np.concatenate([
            np.full(1, KIND_ZHIER, dtype=np.int8),
            np.full(1, KIND_SHADERI, dtype=np.int8),
            np.full(n_vert, KIND_VERTEX, dtype=np.int8),
            np.full(n_tex, KIND_TEX, dtype=np.int8),
            np.full(n_depth, KIND_DEPTH, dtype=np.int8),
            np.full(n_color, KIND_COLOR, dtype=np.int8)])
        addrs = np.concatenate([
            np.array([zhier_addr, shader_addr], dtype=np.int64),
            vert_addrs, tex_addrs, depth_addrs, color_addrs])
        writes = np.concatenate([
            np.zeros(2 + n_vert, dtype=bool),
            np.zeros(n_tex, dtype=bool),
            rng.random(n_depth) < 0.45,
            rng.random(n_color) < 0.75])
        compute = self.compute_per_tile_ticks * mult
        return TileWork(tile, kinds, addrs, writes, compute,
                        updates=updates)

    # -- frame generation -----------------------------------------------------

    def next_frame(self, index: int) -> FrameDescription:
        w = self.workload
        self.scene.advance()
        coverage = self._cover()
        covered = sorted(coverage)
        if not covered:
            return super().next_frame(index)
        # each RTP is a pass over the covered tile set, decimated so the
        # frame's access budget matches the design point even when a
        # handful of triangles already cover more tiles than the budget
        # affords (small scaling presets)
        survive = 1.0 - self.ZHIER_REJECT
        weighted = sum(min(max(round(u * survive), 1), 4)
                       for u in coverage.values())
        budget = self._budget_tiles
        stride = max(int(weighted * w.n_rtp / max(budget, 1)), 1)
        rtps = []
        for r in range(w.n_rtp):
            sel = covered[r % stride::stride] or covered[:1]
            tiles = [self._geom_tile_work(t, coverage[t]) for t in sel]
            rtps.append(RtpWork(r, tiles))
        return FrameDescription(index, rtps)
