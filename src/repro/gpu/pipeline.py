"""The GPU rendering pipeline as a latency-tolerant issue engine.

The command processor walks frames -> RTPs -> tile updates.  Per tile it
pushes the generated accesses through the internal cache hierarchy;
LLC-bound traffic is paced by

* the GTT issue rate (``issue_rate`` accesses per GPU cycle),
* the ATU throttle gate (the paper's ``(N_G, W_G)`` token mechanism),
* MSHR backpressure (at ``mshr_entries`` outstanding fills the front end
  stalls — this is where gated requests "occupy GPU resources").

A tile also carries a compute budget; a tile's time is
``max(memory-issue time, compute time)`` which makes the GPU
compute-bound standalone and memory-bound under contention — the paper's
operating regime.  The frame completes when its last fill returns
(pipeline drain), and the ROP caches flush dirty lines to the LLC.

Observation hooks (consumed by the FRPU and by DynPrio):
:attr:`frame_progress`, per-RTP records, per-frame LLC access counts and
throttle-stall accounting.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.config import GPU_CYCLE_TICKS, GpuConfig
from repro.gpu.caches import GpuCacheHierarchy
from repro.gpu.framebuffer import FrameGenerator, KIND_NAMES
from repro.gpu.workloads import GameWorkload
from repro.mem.request import MemRequest
from repro.sim.engine import Simulator
from repro.sim.stats import StatSet

#: accesses processed per activation before yielding to the event loop
CHUNK = 512
QUANTUM = 2048


class RtpRecord:
    """What the FRPU's RTP-information table stores per plane."""

    __slots__ = ("updates", "cycles", "n_rtts", "llc_accesses",
                 "throttle_ticks")

    def __init__(self, updates: int, cycles: int, n_rtts: int,
                 llc_accesses: int, throttle_ticks: int):
        self.updates = updates
        self.cycles = cycles            # GPU cycles to finish the RTP
        self.n_rtts = n_rtts
        self.llc_accesses = llc_accesses
        self.throttle_ticks = throttle_ticks


class FrameRecord:
    __slots__ = ("index", "cycles", "llc_accesses", "rtps",
                 "throttle_ticks", "end_time")

    def __init__(self, index: int, cycles: int, llc_accesses: int,
                 rtps: list[RtpRecord], throttle_ticks: int, end_time: int):
        self.index = index
        self.cycles = cycles            # GPU cycles for the whole frame
        self.llc_accesses = llc_accesses
        self.rtps = rtps
        self.throttle_ticks = throttle_ticks
        self.end_time = end_time


class PassGate:
    """Default no-op throttle gate."""

    def next_issue_time(self, t: int, kind: str = "") -> int:
        return t

    @property
    def active(self) -> bool:
        return False


class GpuPipeline:
    def __init__(self, sim: Simulator, cfg: GpuConfig,
                 workload: GameWorkload, frames: FrameGenerator,
                 llc_send: Callable[[MemRequest], None],
                 on_frame_done: Optional[Callable[[FrameRecord], None]] = None,
                 max_frames: Optional[int] = None, mem_scale: int = 1):
        self.sim = sim
        self.cfg = cfg
        self.workload = workload
        self.frames = frames
        self.llc_send = llc_send
        self.on_frame_done = on_frame_done
        self.max_frames = max_frames
        self.caches = GpuCacheHierarchy(cfg.caches, mem_scale)
        self.gate = PassGate()          # replaced by the ATU when active
        self._issue_gap = max(GPU_CYCLE_TICKS // cfg.issue_rate, 1)

        # walk state
        self._time = 0.0
        self._frame = None
        self._frame_idx = 0
        self._rtp_idx = 0
        self._tile_idx = 0
        self._acc_idx = 0
        self._running = False
        self._stall: Optional[str] = None
        self._pending_send: Optional[tuple[int, str]] = None
        self.outstanding = 0
        self._draining = False
        self._tile_start = 0.0
        self._compute_share = 1.0
        self._last_llc_issue = 0.0
        self.stopped = False
        #: span tracer (None unless the system wires one) — samples
        #: shader/ROP reads at the LLC issue boundary
        self.tracer = None

        # observation state
        self._frame_start = 0.0
        self._rtp_start = 0.0
        self._frame_llc = 0
        self._rtp_llc = 0
        self._frame_throttle = 0.0
        self._rtp_throttle = 0.0
        self._rtp_records: list[RtpRecord] = []
        self.completed_frames: list[FrameRecord] = []

        self.stats = StatSet("gpu")
        s = self.stats
        self._c_llc = s.counter("llc_accesses")
        self._c_llc_reads = s.counter("llc_reads")
        self._c_llc_writes = s.counter("llc_writes")
        self._c_internal = s.counter("internal_accesses")
        self._c_mshr_stall = s.counter("mshr_stalls")
        self._kind_counts = {name: s.counter(f"llc_{name}")
                             for name in KIND_NAMES.values()}

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        self._time = float(self.sim.now)
        self._begin_frame()
        self._schedule()

    def _schedule(self) -> None:
        if self._running or self.stopped:
            return
        self._running = True
        self.sim.at(max(int(self._time), self.sim.now), self._activate)

    def _activate(self) -> None:
        self._running = False
        if self._stall is not None or self.stopped:
            return
        self._time = max(self._time, float(self.sim.now))
        self._run_chunk()

    # -- frame walking -------------------------------------------------------

    def _begin_frame(self) -> None:
        self._frame = self.frames.next_frame(self._frame_idx)
        self._rtp_idx = 0
        self._tile_idx = 0
        self._acc_idx = 0
        self._frame_start = self._time
        self._rtp_start = self._time
        self._frame_llc = 0
        self._rtp_llc = 0
        self._frame_throttle = 0.0
        self._rtp_throttle = 0.0
        self._rtp_records = []
        self._tile_start = self._time
        self._draining = False

    @property
    def frames_completed(self) -> int:
        return len(self.completed_frames)

    @property
    def frame_progress(self) -> float:
        """Fraction of the current frame rendered (lambda in Eq. 2)."""
        if self._frame is None or self._frame.n_rtps == 0:
            return 0.0
        n = self._frame.n_rtps
        rtp = self._frame.rtps[self._rtp_idx] if self._rtp_idx < n else None
        frac_in_rtp = (self._tile_idx / rtp.n_tiles) if rtp else 0.0
        return min((self._rtp_idx + frac_in_rtp) / n, 1.0)

    def current_frame_elapsed_cycles(self) -> float:
        # wall-clock within the frame: the GPU's local time freezes
        # while it is stalled, which is exactly when observers (DynPrio,
        # the FRPU) most need to see time passing
        now = max(self._time, float(self.sim.now))
        return (now - self._frame_start) / GPU_CYCLE_TICKS

    def current_frame_llc_accesses(self) -> int:
        return self._frame_llc

    def current_frame_throttle_cycles(self) -> float:
        return self._frame_throttle / GPU_CYCLE_TICKS

    def current_rtp_records(self) -> list[RtpRecord]:
        return self._rtp_records

    # -- the issue loop ---------------------------------------------------------

    def _run_chunk(self) -> None:
        deadline = self.sim.now + QUANTUM
        budget = CHUNK
        while budget > 0 and not self.stopped:
            if self._draining:
                if self.outstanding > 0:
                    self._stall = "drain"
                    return
                self._finish_frame()
                if self.stopped:
                    return
            frame = self._frame
            rtp = frame.rtps[self._rtp_idx]
            tile = rtp.tiles[self._tile_idx]
            n = tile.n_accesses
            if self._acc_idx == 0:
                self._tile_start = self._time
                # spread the tile's compute across its accesses: the
                # shader/ROP work interleaves with memory issue, so the
                # GPU generates traffic smoothly instead of in bursts
                self._compute_share = tile.compute_ticks / max(n, 1)
            while self._acc_idx < n:
                if budget <= 0 or self._stall is not None:
                    break
                i = self._acc_idx
                self._acc_idx += 1
                budget -= 1
                self._time += self._compute_share
                self._do_access(int(tile.kinds[i]), int(tile.addrs[i]),
                                bool(tile.writes[i]))
            if self._stall is not None:
                return
            if self._acc_idx >= n:
                self._acc_idx = 0
                self._tile_idx += 1
                if self._tile_idx >= rtp.n_tiles:
                    self._end_rtp(rtp)
            if self._time > deadline:
                break
        if not self.stopped:
            self._schedule_at_time()

    def _schedule_at_time(self) -> None:
        if not self._running:
            self._running = True
            self.sim.at(max(int(self._time), self.sim.now), self._activate)

    def _end_rtp(self, rtp) -> None:
        cycles = max(int((self._time - self._rtp_start) / GPU_CYCLE_TICKS), 1)
        self._rtp_records.append(RtpRecord(
            rtp.updates, cycles, rtp.n_tiles, self._rtp_llc,
            int(self._rtp_throttle / GPU_CYCLE_TICKS)))
        self._rtp_start = self._time
        self._rtp_llc = 0
        self._rtp_throttle = 0.0
        self._tile_idx = 0
        self._rtp_idx += 1
        if self._rtp_idx >= self._frame.n_rtps:
            # flush ROP caches, then drain outstanding fills
            for addr, kind in self.caches.flush_rop():
                self._issue_llc(addr, True, kind)
            self._draining = True

    def _finish_frame(self) -> None:
        self._time = max(self._time, float(self.sim.now))
        cycles = max(int((self._time - self._frame_start)
                         / GPU_CYCLE_TICKS), 1)
        rec = FrameRecord(self._frame_idx, cycles, self._frame_llc,
                          self._rtp_records,
                          int(self._frame_throttle / GPU_CYCLE_TICKS),
                          int(self._time))
        self.completed_frames.append(rec)
        if self.on_frame_done is not None:
            self.on_frame_done(rec)
        self._frame_idx += 1
        if self.max_frames is not None and \
                self._frame_idx >= self.max_frames:
            self.stopped = True
            return
        self._begin_frame()

    # -- per-access handling ------------------------------------------------------

    def _do_access(self, kind: int, addr: int, write: bool) -> None:
        self._c_internal.inc()
        needs_read, writebacks = self.caches.access(kind, addr, write)
        kind_name = KIND_NAMES[kind]
        for wb_addr, wb_kind in writebacks:
            self._issue_llc(wb_addr, True, wb_kind)
        if needs_read:
            self._issue_llc(addr, False, kind_name)

    def _issue_llc(self, addr: int, write: bool, kind: str) -> None:
        # GTT port rate: consecutive LLC issues at least issue_gap apart
        t = max(self._time, self._last_llc_issue + self._issue_gap)
        self._last_llc_issue = t
        # ATU gate (the paper's N_G/W_G port disable)
        gated = self.gate.next_issue_time(int(t), kind)
        if gated > t:
            stall = gated - t
            self._frame_throttle += stall
            self._rtp_throttle += stall
            t = gated
        self._time = t
        if not write:
            if self.outstanding >= self.cfg.mshr_entries:
                self._stall = "mshr"
                self._c_mshr_stall.inc()
                # account and retry from the response handler; the access
                # has NOT been sent yet, so remember it
                self._pending_send = (addr, kind)
                return
            self.outstanding += 1
        self._count_llc(write, kind)
        req = MemRequest(addr, write, "gpu", kind,
                         on_done=self._fill_done if not write else None,
                         created_at=int(self._time))
        when = max(int(self._time), self.sim.now)
        tr = self.tracer
        if tr is not None:
            tr.maybe_start(req, when)
            if req.span is not None:
                tr.gauge_record("gpu_outstanding", when, self.outstanding)
        self.sim.at_call(when, self.llc_send, req)

    def _count_llc(self, write: bool, kind: str) -> None:
        self._c_llc.inc()
        self._frame_llc += 1
        self._rtp_llc += 1
        if write:
            self._c_llc_writes.inc()
        else:
            self._c_llc_reads.inc()
        self._kind_counts[kind].inc()

    def _fill_done(self, req: MemRequest) -> None:
        self.outstanding -= 1
        if self._stall == "mshr":
            self._stall = None
            self._time = max(self._time, float(self.sim.now))
            addr, kind = self._pending_send
            self._pending_send = None
            self.outstanding += 1
            self._count_llc(False, kind)
            retry = MemRequest(addr, False, "gpu", kind,
                               on_done=self._fill_done,
                               created_at=int(self._time))
            when = max(int(self._time), self.sim.now)
            tr = self.tracer
            if tr is not None:
                tr.maybe_start(retry, when)
                if retry.span is not None:
                    tr.gauge_record("gpu_outstanding", when,
                                    self.outstanding)
            self.sim.at_call(when, self.llc_send, retry)
            self._schedule_at_time()
        elif self._stall == "drain" and self.outstanding == 0:
            self._stall = None
            self._time = max(self._time, float(self.sim.now))
            self._schedule_at_time()

    # -- metrics ----------------------------------------------------------------

    def guard_state(self) -> dict:
        """Occupancy/stall snapshot for the invariant monitor."""
        return {"outstanding": self.outstanding,
                "mshr_cap": self.cfg.mshr_entries,
                "stall": self._stall,
                "pending_send": self._pending_send is not None,
                "frames": self.frames_completed,
                "stopped": self.stopped}

    def fps_measured(self, gpu_frame_cycles: int,
                     skip_first: int = 1) -> float:
        """Mean FPS over completed frames (excluding warm-up frames)."""
        frames = self.completed_frames[skip_first:] \
            if len(self.completed_frames) > skip_first \
            else self.completed_frames
        if not frames:
            return 0.0
        mean_cycles = sum(f.cycles for f in frames) / len(frames)
        return self.workload.fps_nominal * gpu_frame_cycles / mean_cycles

    def texture_share(self) -> float:
        tex = self._kind_counts["texture"].value
        total = self._c_llc.value
        return tex / total if total else 0.0
