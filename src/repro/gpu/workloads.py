"""The fourteen 3D-rendering workloads of Table II, as generative models.

The paper replays DirectX/OpenGL API traces of real games on the Attila
GPU simulator.  We have neither traces nor Attila, so each game becomes a
:class:`GameWorkload`: a parametric description of its rendering work —
render-target-plane (RTP) structure, per-tile access mix, texture
footprint, overdraw, compute share, and frame-to-frame variability —
calibrated so that (a) the *nominal standalone FPS* matches Table II and
(b) the qualitative mix matches Section IV's characterisation (texture
≈ 25% of GPU LLC traffic on average, ROP colour/depth dominant, writes
can exceed reads for DOOM3/HL2-style pipelines).

Per-game time scaling (see DESIGN.md): a game's design-point frame is
``scale.gpu_frame_cycles`` GPU cycles, so measured FPS is

    fps = fps_nominal * gpu_frame_cycles / measured_frame_gpu_cycles

which equals ``fps_nominal`` exactly when a frame takes its design-point
time, falls when contention stretches the frame, and rises if it renders
faster.
"""

from __future__ import annotations

from dataclasses import dataclass

MB = 1024 * 1024
KB = 1024

#: resolution classes of Table II (full-size; tiles sample these buffers)
RESOLUTIONS = {"R1": (1280, 1024), "R2": (1920, 1200), "R3": (1600, 1200)}


@dataclass(frozen=True)
class GameWorkload:
    name: str
    api: str                    # "DX" | "OGL"
    frames: tuple[int, int]     # frame range from Table II
    resolution: str             # R1 | R2 | R3
    fps_nominal: float          # Table II standalone FPS
    #: RTPs per frame (full-screen update batches; >1 = overdraw passes)
    n_rtp: int
    #: GPU-internal (pre-filter) memory accesses per RTT update
    tex_per_tile: int
    depth_per_tile: int
    color_per_tile: int
    vertex_per_tile: int
    #: fraction of the design-point frame that is pure compute
    compute_frac: float
    #: GPU-internal (pre-filter) accesses per GPU cycle at the design
    #: point — the game's memory intensity; sets tiles/frame.  The
    #: LLC-bound rate emerges after internal-cache filtering (~3x less).
    llc_intensity: float
    #: texture working set (drives texture LLC footprint / reuse)
    texture_bytes: int
    #: per-frame work jitter (relative sigma; FRPU must ride this out)
    frame_jitter: float = 0.04
    #: fraction of RTTs whose work doubles (hot spots / particle areas)
    hot_tile_frac: float = 0.08

    @property
    def width(self) -> int:
        return RESOLUTIONS[self.resolution][0]

    @property
    def height(self) -> int:
        return RESOLUTIONS[self.resolution][1]

    def accesses_per_tile(self) -> int:
        return (self.tex_per_tile + self.depth_per_tile +
                self.color_per_tile + self.vertex_per_tile)

    def time_scale(self, gpu_frame_cycles: int) -> float:
        """S_game: real-seconds-per-simulated-frame divisor (DESIGN.md)."""
        return 1e9 / (self.fps_nominal * gpu_frame_cycles)


def _g(name, api, frames, res, fps, n_rtp, tex, depth, color, vert,
       compute, intensity, tex_mb, jitter=0.04):
    return GameWorkload(name, api, frames, res, fps, n_rtp, tex, depth,
                        color, vert, compute, intensity,
                        int(tex_mb * MB), jitter)


#: Table II, in paper order.  Access mixes: ROP-heavy pipelines
#: (DOOM3/HL2) have depth+colour dominating and high write share; the
#: 3DMark HDR tests are texture/shader heavy; Crysis is heavy everywhere.
GAME_WORKLOADS: dict[str, GameWorkload] = {g.name: g for g in [
    _g("3DMark06GT1",  "DX",  (670, 671), "R1",   6.0, 5, 26, 30, 28, 6,
       0.92, 0.80, 48),
    _g("3DMark06GT2",  "DX",  (500, 501), "R1",  13.8, 4, 24, 28, 26, 6,
       0.92, 0.75, 40),
    _g("3DMark06HDR1", "DX",  (600, 601), "R1",  16.0, 5, 34, 22, 26, 5,
       0.93, 0.72, 56),
    _g("3DMark06HDR2", "DX",  (550, 551), "R1",  20.8, 5, 32, 22, 26, 5,
       0.93, 0.72, 56),
    _g("COD2",         "DX",  (208, 209), "R2",  18.1, 4, 26, 28, 28, 6,
       0.92, 0.75, 44),
    _g("Crysis",       "DX",  (400, 401), "R2",   6.6, 6, 30, 30, 30, 7,
       0.91, 0.82, 64),
    _g("DOOM3",        "OGL", (300, 314), "R3",  81.0, 4, 20, 34, 30, 5,
       0.94, 0.70, 28, jitter=0.05),
    _g("HL2",          "DX",  (25, 33),   "R3",  75.9, 3, 22, 32, 30, 5,
       0.94, 0.68, 28, jitter=0.06),
    _g("L4D",          "DX",  (601, 605), "R1",  32.5, 4, 26, 28, 26, 6,
       0.93, 0.72, 40),
    _g("NFS",          "DX",  (10, 17),   "R1",  62.3, 3, 24, 28, 28, 5,
       0.94, 0.65, 32, jitter=0.06),
    _g("Quake4",       "OGL", (300, 309), "R3",  80.8, 4, 20, 34, 30, 5,
       0.94, 0.68, 28),
    _g("COR",          "OGL", (253, 267), "R1", 111.0, 3, 22, 30, 28, 5,
       0.95, 0.58, 24, jitter=0.05),
    _g("UT2004",       "OGL", (200, 217), "R3", 130.7, 2, 22, 28, 28, 5,
       0.95, 0.55, 20, jitter=0.07),
    _g("UT3",          "DX",  (955, 956), "R1",  26.8, 5, 28, 28, 28, 6,
       0.93, 1.10, 48),
]}

#: paper order, for table/figure axes
GAME_ORDER = ["3DMark06GT1", "3DMark06GT2", "3DMark06HDR1", "3DMark06HDR2",
              "COD2", "Crysis", "DOOM3", "HL2", "L4D", "NFS", "Quake4",
              "COR", "UT2004", "UT3"]

#: the six games Table II shows above the 40 FPS QoS target — the set
#: Fig. 9–12 throttle; the remaining eight are the Fig. 13–14 set
HIGH_FPS_GAMES = ["DOOM3", "HL2", "NFS", "Quake4", "COR", "UT2004"]
LOW_FPS_GAMES = [g for g in GAME_ORDER if g not in HIGH_FPS_GAMES]


def workload_for(name: str) -> GameWorkload:
    try:
        return GAME_WORKLOADS[name]
    except KeyError:
        raise KeyError(f"unknown game {name!r}; known: {GAME_ORDER}") \
            from None
