"""Machine and experiment configuration.

This module encodes Table I of the paper (the simulated heterogeneous CMP)
as a tree of frozen dataclasses, plus the *scaling presets* that let the
same machine run paper-shaped experiments at laptop speed.

Clocking model
--------------
The simulation uses a single integer time base: **one tick = one CPU cycle
at 4 GHz**.  The GPU runs at 1 GHz, i.e. one GPU cycle = 4 ticks.  The
DDR3-2133 command clock (1066 MHz) is approximated as 4 ticks per DRAM
cycle; this slightly under-clocks the DRAM (1.000 vs 1.066 GHz) which is
irrelevant for the relative results the paper reports.

Scaling model
-------------
The paper simulates 450M instructions per CPU core and full 1280x1024+
frames on a cycle-accurate simulator farm.  We scale all *work* down by a
preset factor while keeping all *machine latencies and rates* fixed, and
report FPS through ``fps_time_scale`` so the Table II calibration holds:

    reported_fps = fps_time_scale * gpu_clock_hz / cycles_per_frame

``fps_time_scale`` equals the factor by which per-frame work was shrunk,
so a game calibrated to 80 FPS standalone reports ~80 FPS at every preset.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


class ConfigError(ValueError):
    """An impossible machine description, rejected at construction time.

    Every config dataclass validates in ``__post_init__`` so a typo'd
    sweep (zero-width core, negative cycle budget, cache that doesn't
    tile, drain watermark outside [0, 1]) fails at build time with a
    named field — never as a nonsense simulation result thousands of
    ticks later.
    """


def _require(cond: bool, what: str) -> None:
    if not cond:
        raise ConfigError(what)


def _positive(name: str, **fields: float) -> None:
    for fname, value in fields.items():
        _require(value > 0, f"{name}.{fname} must be > 0, got {value!r}")


def _non_negative(name: str, **fields: float) -> None:
    for fname, value in fields.items():
        _require(value >= 0,
                 f"{name}.{fname} must be >= 0, got {value!r}")


CPU_CLOCK_HZ: int = 4_000_000_000
GPU_CLOCK_HZ: int = 1_000_000_000

#: ticks (CPU cycles) per GPU cycle
GPU_CYCLE_TICKS: int = 4
#: ticks per DRAM command-bus cycle (approximation of 1066 MHz, see module doc)
DRAM_CYCLE_TICKS: int = 4

LINE_BYTES: int = 64


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and policy of one set-associative cache."""

    name: str
    size_bytes: int
    ways: int
    line_bytes: int = LINE_BYTES
    latency: int = 1                  # lookup latency in ticks
    policy: str = "lru"               # replacement policy registry key
    write_back: bool = True
    write_allocate: bool = True
    mshr_entries: int = 16

    @property
    def sets(self) -> int:
        sets = self.size_bytes // (self.ways * self.line_bytes)
        if sets <= 0:
            raise ConfigError(f"{self.name}: geometry yields {sets} sets")
        return sets

    def __post_init__(self) -> None:
        _positive(self.name, size_bytes=self.size_bytes, ways=self.ways,
                  line_bytes=self.line_bytes,
                  mshr_entries=self.mshr_entries)
        _non_negative(self.name, latency=self.latency)
        if self.size_bytes % (self.ways * self.line_bytes):
            raise ConfigError(
                f"{self.name}: size {self.size_bytes} not divisible by "
                f"ways*line ({self.ways}*{self.line_bytes})"
            )


@dataclass(frozen=True)
class CpuCoreConfig:
    """Interval-model parameters for one out-of-order x86 core (4 GHz)."""

    issue_width: int = 4              # retired instructions per cycle, peak
    rob_entries: int = 192
    mlp_limit: int = 16               # max outstanding LLC-bound loads
    write_buffer: int = 32
    l1i: CacheConfig = field(default_factory=lambda: CacheConfig(
        "l1i", 32 * 1024, 8, latency=2))
    l1d: CacheConfig = field(default_factory=lambda: CacheConfig(
        "l1d", 32 * 1024, 8, latency=2))
    # Latencies are in ticks; one CPU cycle == one tick, so Table I's
    # "2 cycles"/"3 cycles" translate directly.
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(
        "l2", 256 * 1024, 8, latency=3))

    def __post_init__(self) -> None:
        _positive("cpu", issue_width=self.issue_width,
                  rob_entries=self.rob_entries, mlp_limit=self.mlp_limit,
                  write_buffer=self.write_buffer)


@dataclass(frozen=True)
class GpuCachesConfig:
    """GPU-internal cache hierarchy (Table I)."""

    tex_l0: CacheConfig = field(default_factory=lambda: CacheConfig(
        "tex_l0", 2 * 1024, 32, latency=1 * GPU_CYCLE_TICKS))  # fully assoc.
    tex_l1: CacheConfig = field(default_factory=lambda: CacheConfig(
        "tex_l1", 64 * 1024, 16, latency=2 * GPU_CYCLE_TICKS))
    tex_l2: CacheConfig = field(default_factory=lambda: CacheConfig(
        "tex_l2", 384 * 1024, 48, latency=4 * GPU_CYCLE_TICKS))
    depth_l1: CacheConfig = field(default_factory=lambda: CacheConfig(
        "depth_l1", 2 * 1024, 8, line_bytes=256,
        latency=1 * GPU_CYCLE_TICKS))
    depth_l2: CacheConfig = field(default_factory=lambda: CacheConfig(
        "depth_l2", 32 * 1024, 32, latency=2 * GPU_CYCLE_TICKS))
    color_l1: CacheConfig = field(default_factory=lambda: CacheConfig(
        "color_l1", 2 * 1024, 8, line_bytes=256,
        latency=1 * GPU_CYCLE_TICKS))
    color_l2: CacheConfig = field(default_factory=lambda: CacheConfig(
        "color_l2", 32 * 1024, 32, latency=2 * GPU_CYCLE_TICKS))
    vertex: CacheConfig = field(default_factory=lambda: CacheConfig(
        "vertex", 16 * 1024, 256, latency=1 * GPU_CYCLE_TICKS))  # fully assoc.
    zhier: CacheConfig = field(default_factory=lambda: CacheConfig(
        "zhier", 16 * 1024, 16, latency=1 * GPU_CYCLE_TICKS))
    shader_i: CacheConfig = field(default_factory=lambda: CacheConfig(
        "shader_i", 32 * 1024, 8, latency=1 * GPU_CYCLE_TICKS))


@dataclass(frozen=True)
class GpuConfig:
    """Throughput-optimised GPU (1 GHz, unified shader model)."""

    shader_cores: int = 64
    max_thread_contexts: int = 4096
    texture_samplers_per_core: int = 2
    rops: int = 16
    #: max LLC-bound requests in flight (request buffers + MSHRs across
    #: the texture/depth/colour paths; GPUs sustain very deep MLP)
    mshr_entries: int = 48
    #: max LLC accesses the GPU front end can issue per GPU cycle
    issue_rate: int = 2
    caches: GpuCachesConfig = field(default_factory=GpuCachesConfig)

    def __post_init__(self) -> None:
        _positive("gpu", shader_cores=self.shader_cores,
                  max_thread_contexts=self.max_thread_contexts,
                  texture_samplers_per_core=self.texture_samplers_per_core,
                  rops=self.rops, mshr_entries=self.mshr_entries,
                  issue_rate=self.issue_rate)


@dataclass(frozen=True)
class LlcConfig:
    """Shared LLC: 16 MB, 16-way, SRRIP, inclusive for CPU lines only."""

    size_bytes: int = 16 * 1024 * 1024
    ways: int = 16
    line_bytes: int = LINE_BYTES
    latency: int = 10                 # ticks (10 CPU cycles, Table I)
    policy: str = "srrip"
    srrip_bits: int = 2
    mshr_entries: int = 128

    def __post_init__(self) -> None:
        # full geometry/divisibility checks run in cache_config(); the
        # eager ones here catch sweeps that never build a cache
        _positive("llc", size_bytes=self.size_bytes, ways=self.ways,
                  line_bytes=self.line_bytes,
                  mshr_entries=self.mshr_entries)
        _non_negative("llc", latency=self.latency)

    def cache_config(self) -> CacheConfig:
        return CacheConfig(
            "llc", self.size_bytes, self.ways, self.line_bytes,
            latency=self.latency, policy=self.policy,
            mshr_entries=self.mshr_entries)


@dataclass(frozen=True)
class DramTiming:
    """DDR3-2133 14-14-14, values in DRAM command-bus cycles."""

    t_cas: int = 14
    t_rcd: int = 14
    t_rp: int = 14
    t_ras: int = 36
    burst_cycles: int = 4             # BL=8 on a DDR bus -> 4 command cycles
    t_wr: int = 16                    # write recovery
    t_wtr: int = 8                    # write-to-read turnaround
    t_rtp: int = 8                    # read-to-precharge
    #: refresh: tREFI (interval) and tRFC (all-bank busy), DRAM cycles.
    #: Disabled by default (t_refi=0) to keep the calibrated baseline;
    #: the DRAM ablation bench quantifies the ~3% bandwidth tax.
    t_refi: int = 0
    t_rfc: int = 280
    #: tFAW: at most four ACTIVATEs per rolling window (DRAM cycles).
    #: 0 disables the constraint (default, see above).
    t_faw: int = 0

    def __post_init__(self) -> None:
        _positive("dram.timing", t_cas=self.t_cas, t_rcd=self.t_rcd,
                  t_rp=self.t_rp, t_ras=self.t_ras,
                  burst_cycles=self.burst_cycles, t_wr=self.t_wr,
                  t_wtr=self.t_wtr, t_rtp=self.t_rtp, t_rfc=self.t_rfc)
        _non_negative("dram.timing", t_refi=self.t_refi,
                      t_faw=self.t_faw)


@dataclass(frozen=True)
class DramConfig:
    channels: int = 2
    ranks_per_channel: int = 1
    banks_per_rank: int = 8
    row_bytes: int = 8 * 1024         # 1 KB/device x8 devices
    #: address-mapping scheme: "line" interleaves channels at line
    #: granularity (default, maximises channel parallelism), "row"
    #: interleaves at row granularity (keeps a stream on one channel),
    #: "bank-xor" adds a row-XOR bank hash to spread conflict rows
    mapping: str = "line"
    timing: DramTiming = field(default_factory=DramTiming)
    open_page: bool = True
    read_queue: int = 64
    write_queue: int = 64
    #: drain writes when the write queue is this full (fraction)
    write_drain_hi: float = 0.8
    write_drain_lo: float = 0.2

    def __post_init__(self) -> None:
        _positive("dram", channels=self.channels,
                  ranks_per_channel=self.ranks_per_channel,
                  banks_per_rank=self.banks_per_rank,
                  row_bytes=self.row_bytes, read_queue=self.read_queue,
                  write_queue=self.write_queue)
        _require(self.mapping in ("line", "row", "bank-xor"),
                 f"dram.mapping must be line/row/bank-xor, "
                 f"got {self.mapping!r}")
        _require(0.0 <= self.write_drain_lo < self.write_drain_hi <= 1.0,
                 "dram write-drain watermarks must satisfy "
                 "0 <= lo < hi <= 1, got "
                 f"lo={self.write_drain_lo!r} hi={self.write_drain_hi!r}")


@dataclass(frozen=True)
class RingConfig:
    """Bidirectional ring, single-cycle hop (Table I)."""

    hop_ticks: int = 1
    #: ring stops: cores..., LLC slice, MC0, MC1, GPU
    link_bytes_per_tick: int = 32
    #: "latency" (pure hop latency, default) or "contention" (finite
    #: per-direction injection rate; see interconnect.ring)
    model: str = "latency"
    #: injection-slot occupancy per message under the contention model
    slot_ticks: int = 1

    def __post_init__(self) -> None:
        _positive("ring", hop_ticks=self.hop_ticks,
                  link_bytes_per_tick=self.link_bytes_per_tick,
                  slot_ticks=self.slot_ticks)
        _require(self.model in ("latency", "contention"),
                 f"ring.model must be latency/contention, "
                 f"got {self.model!r}")


#: frame-time predictor registry names (the FRPU seam).  Mirrors
#: ``repro.predict.PREDICTOR_NAMES`` — kept as a literal here so the
#: config tree stays import-light; a sync test in tests/predict
#: enforces the equality.  See docs/predictors.md.
PREDICTORS: tuple[str, ...] = ("rtp", "rls", "ewma-blend", "last-frame")


@dataclass(frozen=True)
class QosConfig:
    """The proposal's knobs (Section III)."""

    target_fps: float = 40.0          # 30 FPS floor + 10 FPS cushion
    rtp_table_entries: int = 64
    #: relative drift that invalidates learned data (cross-verification)
    verify_threshold: float = 0.25
    #: W_G growth step of the Fig. 6 loop
    wg_step: int = 2
    #: GPU cycles between throttle-parameter recomputations
    recompute_interval_gpu_cycles: int = 2048
    #: enable the DRAM-scheduler CPU-priority boost
    cpu_priority_boost: bool = True
    #: frame-time predictor behind the FRPU: "rtp" (the paper's Eqs.
    #: 1-3 extrapolator, default), "rls", "ewma-blend" or "last-frame"
    predictor: str = "rtp"

    def __post_init__(self) -> None:
        _positive("qos", target_fps=self.target_fps,
                  rtp_table_entries=self.rtp_table_entries,
                  wg_step=self.wg_step,
                  recompute_interval_gpu_cycles=(
                      self.recompute_interval_gpu_cycles))
        _require(0.0 < self.verify_threshold <= 1.0,
                 "qos.verify_threshold must be in (0, 1], got "
                 f"{self.verify_threshold!r}")
        _require(self.predictor in PREDICTORS,
                 f"qos.predictor must be one of {'/'.join(PREDICTORS)}, "
                 f"got {self.predictor!r}")


@dataclass(frozen=True)
class Scale:
    """Work-scaling preset.

    Frames are scaled *per game*: a game nominally running at ``fps`` has
    a design-point frame of ``gpu_frame_cycles`` GPU cycles, so its time
    scale is ``S_game = 1e9 / (fps * gpu_frame_cycles)`` and measured FPS
    is reported as ``S_game * 1e9 / measured_frame_ticks_in_gpu_cycles``.
    Capacity *ratios* are preserved rather than absolute sizes: the LLC,
    the CPU private caches, the applications' hot sets and streaming
    footprints, and the GPU texture/vertex footprints all shrink by the
    same ``mem_scale`` so the working-set-to-capacity pressure (the
    mechanism the paper manages) is faithful at every preset.
    """

    name: str
    #: design-point GPU cycles per frame (standalone, compute-bound part)
    gpu_frame_cycles: int
    cpu_instructions: int             # per core, already scaled
    min_frames: int = 4               # at least this many frames per run
    max_frames: int = 12
    #: CPU warm-up instructions before measurement begins
    warmup_instructions: int = 0
    #: LLC capacity at this preset.  A scaled run issues ~1000x fewer
    #: accesses than the paper's 450M-instruction windows, so the full
    #: 16 MB LLC would never fill and every capacity effect — the very
    #: mechanism the paper manages — would vanish.  Shrinking the LLC
    #: with the work preserves the working-set-to-capacity pressure.
    llc_bytes: int = 1024 * 1024
    #: uniform divisor for the other memory footprints: CPU private
    #: caches, application hot/big regions, GPU texture/vertex buffers
    #: and larger GPU-internal caches, so every capacity ratio (hot set
    #: vs L1/L2, private caches vs LLC, footprint vs LLC) stays in the
    #: paper's regime at reduced access counts.
    mem_scale: int = 4

    def __post_init__(self) -> None:
        _positive(f"scale[{self.name}]",
                  gpu_frame_cycles=self.gpu_frame_cycles,
                  cpu_instructions=self.cpu_instructions,
                  min_frames=self.min_frames, max_frames=self.max_frames,
                  llc_bytes=self.llc_bytes, mem_scale=self.mem_scale)
        _non_negative(f"scale[{self.name}]",
                      warmup_instructions=self.warmup_instructions)
        _require(self.min_frames <= self.max_frames,
                 f"scale[{self.name}]: min_frames {self.min_frames} "
                 f"exceeds max_frames {self.max_frames}")


#: Presets: "smoke" for unit tests, "test" for integration/benchmarks,
#: "paper" for the most faithful (slow) runs.
SCALES: dict[str, Scale] = {
    "smoke": Scale("smoke", gpu_frame_cycles=8_000,
                   cpu_instructions=40_000, min_frames=3, max_frames=6,
                   llc_bytes=512 * 1024, mem_scale=8),
    "test": Scale("test", gpu_frame_cycles=24_000,
                  cpu_instructions=150_000, min_frames=4, max_frames=9,
                  warmup_instructions=20_000, llc_bytes=1024 * 1024,
                  mem_scale=4),
    "bench": Scale("bench", gpu_frame_cycles=40_000,
                   cpu_instructions=300_000, min_frames=5, max_frames=12,
                   warmup_instructions=40_000, llc_bytes=2 * 1024 * 1024,
                   mem_scale=2),
    "paper": Scale("paper", gpu_frame_cycles=120_000,
                   cpu_instructions=1_200_000, min_frames=6, max_frames=18,
                   warmup_instructions=150_000,
                   llc_bytes=4 * 1024 * 1024, mem_scale=1),
}


@dataclass(frozen=True)
class SystemConfig:
    """Top-level machine description (Table I) plus scaling preset."""

    n_cpus: int = 4
    cpu: CpuCoreConfig = field(default_factory=CpuCoreConfig)
    gpu: GpuConfig = field(default_factory=GpuConfig)
    llc: LlcConfig = field(default_factory=LlcConfig)
    dram: DramConfig = field(default_factory=DramConfig)
    ring: RingConfig = field(default_factory=RingConfig)
    qos: QosConfig = field(default_factory=QosConfig)
    scale: Scale = field(default_factory=lambda: SCALES["test"])
    seed: int = 1
    #: GPU front end: "procedural" (calibrated tile budgets, default)
    #: or "geometry" (explicit triangle scene -> raster coverage)
    gpu_frontend: str = "procedural"

    def __post_init__(self) -> None:
        # n_cpus == 0 is legal: standalone GPU runs have no CPU cores
        _non_negative("system", n_cpus=self.n_cpus)
        _require(self.gpu_frontend in ("procedural", "geometry"),
                 f"system.gpu_frontend must be procedural/geometry, "
                 f"got {self.gpu_frontend!r}")

    def with_scale(self, scale: str | Scale) -> "SystemConfig":
        if isinstance(scale, str):
            scale = SCALES[scale]
        return replace(self, scale=scale)

    def with_cpus(self, n: int) -> "SystemConfig":
        return replace(self, n_cpus=n)

    def with_qos(self, **kwargs) -> "SystemConfig":
        return replace(self, qos=replace(self.qos, **kwargs))

    def effective_llc(self) -> LlcConfig:
        """The LLC at this preset's capacity (see :class:`Scale`)."""
        return replace(self.llc, size_bytes=self.scale.llc_bytes)

    def effective_cpu(self) -> CpuCoreConfig:
        """CPU core config with private caches at this preset's scale."""
        k = self.scale.mem_scale
        if k <= 1:
            return self.cpu
        return replace(
            self.cpu,
            l1i=replace(self.cpu.l1i,
                        size_bytes=self.cpu.l1i.size_bytes // k),
            l1d=replace(self.cpu.l1d,
                        size_bytes=self.cpu.l1d.size_bytes // k),
            l2=replace(self.cpu.l2,
                       size_bytes=self.cpu.l2.size_bytes // k))


def default_config(scale: str = "test", n_cpus: int = 4,
                   seed: int = 1) -> SystemConfig:
    """The Table I machine at the given scaling preset."""
    return SystemConfig(n_cpus=n_cpus, scale=SCALES[scale], seed=seed)
