"""The ``Predictor`` interface: the seam behind the FRPU.

The paper's QoS controller needs exactly one estimate — the projected
cycle count of the frame currently being rendered — plus the learned
per-frame LLC access count ``A`` that converts a cycle surplus into a
throttle window (Fig. 6).  Everything else about the FRPU (the RTP
information table, the learning/prediction phase machine, Eqs. 1-3) is
an *implementation* of that contract, not the contract itself.

This module extracts the contract so the hand-built extrapolator
(:class:`repro.predict.rtp.RtpExtrapolator`) and the online-learned
models (:mod:`repro.predict.rls`, :mod:`repro.predict.blend`) are
interchangeable behind :class:`repro.core.qos.QoSController`:

* ``predict_frame_cycles(pipeline)`` — projected GPU cycles for the
  in-flight frame, or ``None`` when the predictor has no valid estimate
  (the controller then runs unthrottled, exactly as the paper's
  mechanism "remains disabled" without a verified learning).
* ``on_frame_complete(rec)`` — one observation per finished frame; the
  predictor learns/verifies/updates from the
  :class:`~repro.gpu.pipeline.FrameRecord`.
* ``ready`` — True iff ``predict_frame_cycles`` can produce estimates.
* ``frame_llc_accesses()`` — the learned per-frame ``A`` (0 = unknown).

Shared behaviour lives here so every predictor is measured the same
way: mid-frame predictions taken at ``lambda in [0.25, 0.75]`` are
remembered (bounded, stale entries pruned) and scored against the
frame's *natural* cycle count — observed cycles minus the ATU-injected
throttle stall — when the frame completes.  Errors land in
``error_log`` (the Fig. 8 metric) and, when a telemetry hub is
attached, as ``predictor_error`` records (``frpu_error`` for the
reference extrapolator, whose byte stream predates the seam and is
golden-tested to stay bit-identical).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

from repro.gpu.pipeline import FrameRecord


class Predictor(ABC):
    """Observe frame/progress samples -> predict frame completion time.

    Subclasses implement :meth:`_observe` (digest one completed frame),
    :meth:`predict_frame_cycles`, :attr:`ready` and
    :meth:`frame_llc_accesses`.  The base class owns cold-frame
    skipping, prediction-error bookkeeping and telemetry emission.
    """

    #: registry name (overridden per subclass)
    name: str = "?"

    #: outstanding mid-frame predictions kept at most; older entries
    #: belong to frames that will never reach ``on_frame_complete``
    #: (run ended mid-frame, learning reset) and would otherwise leak
    MID_FRAME_BOUND = 4

    def __init__(self, correct_throttle: bool = True,
                 skip_frames: int = 1, seed: int = 0, telemetry=None):
        from repro.config import ConfigError
        if skip_frames < 0:
            raise ConfigError(
                f"predictor.skip_frames must be >= 0, got {skip_frames!r}")
        #: subtract the pipeline's accounted throttle stall so the
        #: predictor sees *natural* frame time (see repro.core.frpu's
        #: module doc for why this keeps W_G stable)
        self.correct_throttle = correct_throttle
        #: initial frames ignored entirely (cold caches would poison
        #: any learned cycle statistic and bias later predictions)
        self.skip_frames = skip_frames
        #: deterministic-init seed; every shipped predictor is fully
        #: deterministic, the seed only perturbs explicitly-randomised
        #: research variants
        self.seed = seed
        #: optional repro.telemetry.Telemetry: prediction-error samples
        #: are emitted when attached
        self.telemetry = telemetry
        #: per-frame (frame, predicted, actual) for the Fig. 8 metric
        self.error_log: list[tuple[int, float, float]] = []
        self._mid_frame_prediction: dict[int, float] = {}
        self.frames_learned = 0
        self.frames_predicted = 0

    # -- the contract --------------------------------------------------------

    @abstractmethod
    def predict_frame_cycles(self, pipeline) -> Optional[float]:
        """Projected GPU cycles for the frame currently being rendered,
        or ``None`` when no valid estimate exists."""

    @property
    @abstractmethod
    def ready(self) -> bool:
        """True iff the predictor currently holds a valid estimate."""

    @abstractmethod
    def frame_llc_accesses(self) -> int:
        """Learned LLC accesses per frame (the paper's ``A``); a value
        ``<= 0`` means unknown and keeps the throttle disabled."""

    @abstractmethod
    def _observe(self, rec: FrameRecord) -> None:
        """Digest one completed (non-cold) frame."""

    def storage_bits(self) -> int:
        """Hardware budget of the predictor state (Section III-D
        accounting); a dozen 4-byte working registers by default."""
        return 12 * 32

    # -- frame completion ----------------------------------------------------

    def on_frame_complete(self, rec: FrameRecord) -> None:
        if rec.index < self.skip_frames:
            return                     # cold-start frame: ignore
        if self.ready:
            self.frames_predicted += 1
            self._log_error(rec)
        self._observe(rec)

    # -- shared measurement plumbing -----------------------------------------

    def natural_cycles(self, rec: FrameRecord) -> float:
        """Observed frame cycles with the ATU-injected stall removed
        (kept when ``correct_throttle=False``)."""
        return float(rec.cycles - (rec.throttle_ticks
                                   if self.correct_throttle else 0))

    def _note_mid_frame(self, frame_idx: int, predicted: float) -> None:
        mid = self._mid_frame_prediction
        mid[frame_idx] = predicted
        while len(mid) > self.MID_FRAME_BOUND:
            del mid[min(mid)]

    def _log_error(self, rec: FrameRecord) -> None:
        mid = self._mid_frame_prediction
        for idx in [i for i in mid if i < rec.index]:
            del mid[idx]              # stale: that frame never completed
        pred = mid.pop(rec.index, None)
        if pred is None:
            return
        actual = self.natural_cycles(rec)
        if actual > 0:
            self.error_log.append((rec.index, pred, float(actual)))
            self._emit_error(rec, pred, float(actual))

    def _emit_error(self, rec: FrameRecord, pred: float,
                    actual: float) -> None:
        if self.telemetry is not None:
            self.telemetry.emit(
                "predictor_error", tick=rec.end_time, frame=rec.index,
                predictor=self.name, predicted_cycles=pred,
                actual_cycles=actual,
                error_pct=100.0 * (pred - actual) / actual)

    def predicted_fps(self, pipeline, fps_nominal: float,
                      gpu_frame_cycles: int) -> Optional[float]:
        f = self.predict_frame_cycles(pipeline)
        if f is None or f <= 0:
            return None
        return fps_nominal * gpu_frame_cycles / f

    # -- Fig. 8 metric -------------------------------------------------------

    def percent_errors(self) -> list[float]:
        return [100.0 * (p - a) / a for _, p, a in self.error_log]

    def mean_abs_percent_error(self) -> float:
        errs = self.percent_errors()
        return sum(abs(e) for e in errs) / len(errs) if errs else 0.0
