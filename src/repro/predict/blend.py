"""History-driven predictors: the multi-horizon blender and the naive
last-frame baseline.

``EwmaBlendPredictor`` keeps one exponentially-weighted moving average
of the natural frame time per *horizon* (a fast tracker, a mid tracker
and a slow tracker) and combines them with multiplicative-weights
("hedge") mixing: after every completed frame each horizon's standing
estimate is scored against the observed time and its mixture weight is
scaled by ``exp(-eta * |error| / actual)``.  Stable workloads
concentrate weight on the slow, noise-free average; phase changes move
it onto the fast tracker within a frame or two — the representation-
drift behaviour motivated by Raghavan et al. ("GPU Activity Prediction
using Representation Learning", PAPERS.md) without the offline
training a representation model needs.  Mid-frame, the blended history
estimate ``H`` is combined with the in-frame extrapolation
``E = elapsed / lambda`` exactly as Eq. 3 combines ``C_inter`` with
``C_avg``:

    F = lambda * E + (1 - lambda) * H

``LastFramePredictor`` predicts that the current frame will take as
long as the previous one.  It is deliberately the simplest model that
is ever right — the head-to-head floor every learned predictor must
beat (`python -m repro compare-predictors`).

Both are deterministic and state their full hardware cost via
``storage_bits``.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.gpu.pipeline import FrameRecord
from repro.predict.base import Predictor
from repro.predict.features import MIN_LAMBDA


class EwmaBlendPredictor(Predictor):
    name = "ewma-blend"

    def __init__(self, alphas: tuple[float, ...] = (0.5, 0.2, 0.05),
                 eta: float = 2.0, min_history: int = 2,
                 llc_alpha: float = 0.3, correct_throttle: bool = True,
                 skip_frames: int = 1, seed: int = 0, telemetry=None):
        from repro.config import ConfigError
        if not alphas or any(not 0.0 < a <= 1.0 for a in alphas):
            raise ConfigError("ewma-blend.alphas must all be in (0, 1], "
                              f"got {alphas!r}")
        if eta <= 0:
            raise ConfigError(f"ewma-blend.eta must be > 0, got {eta!r}")
        if min_history < 1:
            raise ConfigError("ewma-blend.min_history must be >= 1, "
                              f"got {min_history!r}")
        super().__init__(correct_throttle=correct_throttle,
                         skip_frames=skip_frames, seed=seed,
                         telemetry=telemetry)
        self.alphas = tuple(alphas)
        self.eta = eta
        self.min_history = min_history
        self.llc_alpha = llc_alpha
        self._means: list[Optional[float]] = [None] * len(self.alphas)
        self._weights = [1.0 / len(self.alphas)] * len(self.alphas)
        self._llc_ewma = 0.0
        self._frames_observed = 0

    # -- the Predictor contract ----------------------------------------------

    @property
    def ready(self) -> bool:
        return self._frames_observed >= self.min_history

    def frame_llc_accesses(self) -> int:
        return int(self._llc_ewma)

    def storage_bits(self) -> int:
        h = len(self.alphas)
        # per-horizon mean + weight, the llc EWMA, working registers
        return (2 * h + 1) * 32 + 12 * 32

    def history_estimate(self) -> Optional[float]:
        """The hedge-weighted blend of the horizon averages."""
        if self._means[0] is None:
            return None
        return sum(w * m for w, m in zip(self._weights, self._means))

    def predict_frame_cycles(self, pipeline) -> Optional[float]:
        if not self.ready:
            return None
        hist = self.history_estimate()
        if hist is None:
            return None
        lam = min(max(pipeline.frame_progress, 0.0), 1.0)
        elapsed = pipeline.current_frame_elapsed_cycles()
        if self.correct_throttle:
            elapsed -= pipeline.current_frame_throttle_cycles()
        if lam > MIN_LAMBDA and elapsed > 0:
            f = lam * (elapsed / lam) + (1.0 - lam) * hist
        else:
            f = hist                   # too early in the frame: history only
        f = max(f, elapsed, 1.0)
        if 0.25 <= lam <= 0.75:
            self._note_mid_frame(pipeline._frame_idx, f)
        return f

    # -- training ------------------------------------------------------------

    def _observe(self, rec: FrameRecord) -> None:
        if not rec.rtps:
            return                     # empty frame: nothing to learn
        y = self.natural_cycles(rec)
        if y <= 0:
            return
        if self._means[0] is not None:
            # hedge: score each horizon's standing estimate, then mix
            scaled = [w * math.exp(-self.eta * abs(m - y) / y)
                      for w, m in zip(self._weights, self._means)]
            total = sum(scaled)
            if total > 0:
                self._weights = [s / total for s in scaled]
        self._means = [y if m is None else (1.0 - a) * m + a * y
                       for a, m in zip(self.alphas, self._means)]
        llc = float(sum(r.llc_accesses for r in rec.rtps))
        self._llc_ewma = (llc if self._frames_observed == 0 else
                          (1.0 - self.llc_alpha) * self._llc_ewma +
                          self.llc_alpha * llc)
        self._frames_observed += 1
        self.frames_learned += 1


class LastFramePredictor(Predictor):
    name = "last-frame"

    def __init__(self, correct_throttle: bool = True,
                 skip_frames: int = 1, seed: int = 0, telemetry=None):
        super().__init__(correct_throttle=correct_throttle,
                         skip_frames=skip_frames, seed=seed,
                         telemetry=telemetry)
        self._last: Optional[float] = None
        self._last_llc = 0

    @property
    def ready(self) -> bool:
        return self._last is not None

    def frame_llc_accesses(self) -> int:
        return self._last_llc

    def storage_bits(self) -> int:
        return 2 * 32 + 12 * 32        # last time + last A + registers

    def predict_frame_cycles(self, pipeline) -> Optional[float]:
        if self._last is None:
            return None
        lam = min(max(pipeline.frame_progress, 0.0), 1.0)
        elapsed = pipeline.current_frame_elapsed_cycles()
        if self.correct_throttle:
            elapsed -= pipeline.current_frame_throttle_cycles()
        f = max(self._last, elapsed, 1.0)
        if 0.25 <= lam <= 0.75:
            self._note_mid_frame(pipeline._frame_idx, f)
        return f

    def _observe(self, rec: FrameRecord) -> None:
        if not rec.rtps:
            return
        y = self.natural_cycles(rec)
        if y <= 0:
            return
        self._last = y
        self._last_llc = sum(r.llc_accesses for r in rec.rtps)
        self.frames_learned += 1
