"""Per-frame telemetry features for the learned predictors.

The learned models regress the *natural* frame time (observed GPU
cycles minus ATU-injected stall) onto the frame's **work metrics** —
the same quantities the FRPU's cross-verification trusts, because they
move with the rendered workload, not with memory contention or with our
own throttling:

========== ======================= =====================================
feature    source                  meaning
========== ======================= =====================================
bias       1.0                     intercept
n_rtp      ``len(rec.rtps)``       render-target planes in the frame
updates    sum of ``r.updates``    RTT updates across the frame's RTPs
rtts       sum of ``r.n_rtts``     tile batches across the frame's RTPs
llc        sum of ``r.llc_accesses`` LLC accesses issued by the frame
========== ======================= =====================================

Two extraction paths share the schema:

* :func:`frame_features` — from a completed
  :class:`~repro.gpu.pipeline.FrameRecord` (training observations);
* :func:`partial_features` — mid-frame, from the pipeline's completed
  RTP records scaled to a full-frame estimate by the rendered fraction
  ``lambda``, blended Eq. 3-style with a trailing average of completed
  frames so an early-frame estimate degrades gracefully toward history
  instead of exploding (``x_hat = lam * x_partial/lam + (1-lam) *
  x_ewma``).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.gpu.pipeline import FrameRecord

#: the feature schema, in vector order (documented in docs/predictors.md)
FEATURE_NAMES: tuple[str, ...] = ("bias", "n_rtp", "updates", "rtts",
                                  "llc")

N_FEATURES = len(FEATURE_NAMES)

#: below this rendered fraction a partial-frame scale-up is too noisy
#: to trust at all; callers fall back to the historical average
MIN_LAMBDA = 0.05


def frame_features(rec: FrameRecord) -> list[float]:
    """Feature vector of one completed frame (see module table)."""
    rtps = rec.rtps
    return [1.0,
            float(len(rtps)),
            float(sum(r.updates for r in rtps)),
            float(sum(r.n_rtts for r in rtps)),
            float(sum(r.llc_accesses for r in rtps))]


def partial_features(pipeline, lam: float,
                     history: Optional[Sequence[float]]
                     ) -> Optional[list[float]]:
    """Full-frame feature estimate for the in-flight frame.

    ``history`` is a trailing average of completed-frame feature
    vectors (EWMA); ``None`` means no history, in which case only a
    confidently-scaled partial estimate is returned.  Returns ``None``
    when neither source can produce an estimate (first frame, nothing
    rendered yet).
    """
    records = pipeline.current_rtp_records()
    partial: Optional[list[float]] = None
    if records and lam > MIN_LAMBDA:
        scale = 1.0 / lam
        partial = [1.0,
                   len(records) * scale,
                   sum(r.updates for r in records) * scale,
                   sum(r.n_rtts for r in records) * scale,
                   sum(r.llc_accesses for r in records) * scale]
    if partial is None:
        return list(history) if history is not None else None
    if history is None:
        return partial
    # Eq. 3 in feature space: trust the in-frame observation in
    # proportion to how much of the frame it has seen
    return [lam * p + (1.0 - lam) * h for p, h in zip(partial, history)]


def ewma_update(history: Optional[list[float]], x: Sequence[float],
                alpha: float) -> list[float]:
    """One EWMA step of the trailing feature average."""
    if history is None:
        return list(x)
    return [(1.0 - alpha) * h + alpha * v for h, v in zip(history, x)]
