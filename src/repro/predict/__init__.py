"""repro.predict — pluggable frame-time predictors behind the FRPU.

The throttling policy's quality hinges on one estimate: how many GPU
cycles the in-flight frame will take (Section III-A).  This package
turns that estimator into a seam:

* :class:`~repro.predict.base.Predictor` — the interface contract
  (observe completed frames, predict the current frame's cycles and
  the learned per-frame LLC access count ``A``).
* :class:`~repro.predict.rtp.RtpExtrapolator` — the paper's Eqs. 1-3
  extrapolator, the reference implementation and the default
  (bit-identical to the pre-seam FRPU under the golden tests).
* :class:`~repro.predict.rls.RlsPredictor` — online recursive least
  squares over per-frame work features (Gupta et al., PAPERS.md).
* :class:`~repro.predict.blend.EwmaBlendPredictor` — exponentially-
  weighted multi-horizon blender with hedge mixing (Raghavan et al.,
  PAPERS.md motivates the drift-tracking behaviour).
* :class:`~repro.predict.blend.LastFramePredictor` — the naive
  persistence baseline every learned model must beat.

Selection is wired through ``SystemConfig.qos.predictor`` /
``--predictor`` on the CLI; the head-to-head evaluation suite lives in
:mod:`repro.analysis.predictors` (``python -m repro
compare-predictors``).  See docs/predictors.md.
"""

from __future__ import annotations

from repro.predict.base import Predictor
from repro.predict.blend import EwmaBlendPredictor, LastFramePredictor
from repro.predict.features import FEATURE_NAMES, frame_features
from repro.predict.rls import RlsPredictor
from repro.predict.rtp import (LearnedFrame, Phase, PredictionSample,
                               RtpExtrapolator)

#: registry, in documentation order.  Must stay in sync with
#: ``repro.config.PREDICTORS`` (enforced by tests/predict).
_REGISTRY: dict[str, type[Predictor]] = {
    "rtp": RtpExtrapolator,
    "rls": RlsPredictor,
    "ewma-blend": EwmaBlendPredictor,
    "last-frame": LastFramePredictor,
}

PREDICTOR_NAMES: tuple[str, ...] = tuple(_REGISTRY)


def make_predictor(name: str, *, rtp_entries: int = 64,
                   verify_threshold: float = 0.25,
                   correct_throttle: bool = True, skip_frames: int = 1,
                   seed: int = 0, telemetry=None,
                   **kwargs) -> Predictor:
    """Build a predictor by registry name.

    ``rtp_entries`` and ``verify_threshold`` only apply to the
    reference extrapolator (they parameterise the RTP information
    table and the Fig. 4 cross-verification); the shared knobs
    (``correct_throttle``, ``skip_frames``, ``seed``, ``telemetry``)
    reach every implementation, and ``kwargs`` passes
    implementation-specific knobs through (e.g. ``forgetting=`` for
    ``rls``).
    """
    cls = _REGISTRY.get(name.lower())
    if cls is None:
        raise KeyError(f"unknown predictor {name!r}; "
                       f"known: {', '.join(PREDICTOR_NAMES)}")
    common = dict(correct_throttle=correct_throttle,
                  skip_frames=skip_frames, seed=seed,
                  telemetry=telemetry)
    if cls is RtpExtrapolator:
        return cls(rtp_entries=rtp_entries,
                   verify_threshold=verify_threshold, **common, **kwargs)
    return cls(**common, **kwargs)


__all__ = ["Predictor", "RtpExtrapolator", "RlsPredictor",
           "EwmaBlendPredictor", "LastFramePredictor", "Phase",
           "LearnedFrame", "PredictionSample", "FEATURE_NAMES",
           "frame_features", "make_predictor", "PREDICTOR_NAMES"]
