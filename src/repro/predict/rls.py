"""Online recursive-least-squares frame-time predictor.

Following the online-learning methodology of Gupta et al. ("An Online
Learning Methodology for Performance Modeling of Graphics Processors",
see PAPERS.md), the model maintains a linear map from per-frame work
features (:mod:`repro.predict.features`) to the frame's natural cycle
count, updated after every completed frame by exponentially-weighted
recursive least squares:

    k   = P x / (beta + x' P x)          (gain)
    w  += k (y - x' w)                   (weight update)
    P   = (P - k x' P) / beta            (inverse-covariance update)

with forgetting factor ``beta`` slightly below 1 so the model tracks
phase drift — the regime where a fixed extrapolation (the RTP
reference) misfires — while still averaging out contention noise.

Mid-frame, the current frame's feature vector is estimated by scaling
the completed-RTP partial observations to full-frame magnitude and
blending with the trailing feature average
(:func:`repro.predict.features.partial_features`); the projection
``w . x_hat`` is floored at the frame's natural elapsed time (a frame
cannot finish in the past).

Everything is deterministic: weights start at zero, ``P`` at
``p0 * I``, and no randomness enters the update, so two runs with the
same seed are bit-identical (``tests/predict/test_predictors.py``).
"""

from __future__ import annotations

import math
from typing import Optional

from repro.gpu.pipeline import FrameRecord
from repro.predict.base import Predictor
from repro.predict.features import (MIN_LAMBDA, N_FEATURES, ewma_update,
                                    frame_features, partial_features)


class RlsPredictor(Predictor):
    name = "rls"

    def __init__(self, forgetting: float = 0.98, p0: float = 1e6,
                 min_history: int = 2, feature_alpha: float = 0.3,
                 correct_throttle: bool = True, skip_frames: int = 1,
                 seed: int = 0, telemetry=None):
        from repro.config import ConfigError
        if not 0.0 < forgetting <= 1.0:
            raise ConfigError("rls.forgetting must be in (0, 1], "
                              f"got {forgetting!r}")
        if p0 <= 0:
            raise ConfigError(f"rls.p0 must be > 0, got {p0!r}")
        if min_history < 1:
            raise ConfigError(
                f"rls.min_history must be >= 1, got {min_history!r}")
        super().__init__(correct_throttle=correct_throttle,
                         skip_frames=skip_frames, seed=seed,
                         telemetry=telemetry)
        self.forgetting = forgetting
        self.min_history = min_history
        self.feature_alpha = feature_alpha
        n = N_FEATURES
        self._w = [0.0] * n
        self._p = [[p0 if i == j else 0.0 for j in range(n)]
                   for i in range(n)]
        #: trailing EWMA of completed-frame feature vectors (the
        #: history side of the mid-frame feature blend)
        self._x_ewma: Optional[list[float]] = None
        self._frames_observed = 0

    # -- the Predictor contract ----------------------------------------------

    @property
    def ready(self) -> bool:
        return self._frames_observed >= self.min_history

    def frame_llc_accesses(self) -> int:
        if self._x_ewma is None:
            return 0
        return int(self._x_ewma[-1])   # the llc feature (schema order)

    def storage_bits(self) -> int:
        n = N_FEATURES
        # weights + inverse covariance + feature EWMA, 4 bytes each,
        # plus a dozen working registers
        return (n + n * n + n) * 32 + 12 * 32

    def predict_frame_cycles(self, pipeline) -> Optional[float]:
        if not self.ready:
            return None
        lam = min(max(pipeline.frame_progress, 0.0), 1.0)
        x = partial_features(pipeline, lam, self._x_ewma)
        if x is None:
            return None
        f = sum(w * v for w, v in zip(self._w, x))
        if not math.isfinite(f):
            return None
        elapsed = pipeline.current_frame_elapsed_cycles()
        if self.correct_throttle:
            elapsed -= pipeline.current_frame_throttle_cycles()
        f = max(f, elapsed, 1.0)
        if 0.25 <= lam <= 0.75:
            self._note_mid_frame(pipeline._frame_idx, f)
        return f

    # -- training ------------------------------------------------------------

    def _observe(self, rec: FrameRecord) -> None:
        if not rec.rtps:
            return                     # empty frame: nothing to learn
        y = self.natural_cycles(rec)
        if y <= 0:
            return
        x = frame_features(rec)
        self._rls_update(x, y)
        self._x_ewma = ewma_update(self._x_ewma, x, self.feature_alpha)
        self._frames_observed += 1
        self.frames_learned += 1

    def _rls_update(self, x: list[float], y: float) -> None:
        n = N_FEATURES
        p, w, beta = self._p, self._w, self.forgetting
        px = [sum(p[i][j] * x[j] for j in range(n)) for i in range(n)]
        denom = beta + sum(x[i] * px[i] for i in range(n))
        if denom <= 1e-12 or not math.isfinite(denom):
            return                     # degenerate direction: skip
        k = [v / denom for v in px]
        err = y - sum(w[i] * x[i] for i in range(n))
        for i in range(n):
            w[i] += k[i] * err
        for i in range(n):
            ki = k[i]
            row = p[i]
            for j in range(n):
                row[j] = (row[j] - ki * px[j]) / beta
