"""The reference predictor: the paper's FRPU extrapolator (Eqs. 1-3).

This is the hand-built frame-rate predictor of Section III-A, extracted
verbatim from ``repro.core.frpu`` behind the
:class:`~repro.predict.base.Predictor` interface.  It alternates
between a *learning* phase — one complete frame is monitored and its
per-RTP statistics recorded in the RTP information table — and a
*prediction* phase, where the current frame's projected cycle count is

    F = (lambda * C_inter + (1 - lambda) * C_avg) * N_rtp        (Eq. 3)

with ``lambda`` the fraction of the frame rendered so far, ``C_inter``
the average cycles/RTP observed in the current frame, and ``C_avg`` /
``N_rtp`` from the learned frame.  Each completed frame in the
prediction phase is cross-verified against the learned data; drifting
more than ``verify_threshold`` discards the learning (back to point B
of Fig. 4).

Verification uses the *work* metrics (RTP count, updates, RTT counts,
LLC accesses) rather than cycles: cycle counts legitimately move with
memory-system contention and with our own throttling, while a change in
the rendered workload shows up in the work metrics.

Throttle correction: while the ATU gates accesses, observed cycles
include the injected stall.  The predictor subtracts the pipeline's
accounted throttle stall from ``C_inter`` to obtain the *natural* frame
time, so the throttle computation ``W_G = (C_T - C_P)/A`` stays stable
instead of oscillating (set ``correct_throttle=False`` to get the raw
paper-literal behaviour; the ablation bench compares both).

Behaviour is golden-tested to be bit-identical (RunResult and telemetry
byte stream) to the pre-seam FRPU — see
``tests/predict/test_predict_golden.py``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.core.rtp_table import RtpInfoTable
from repro.gpu.pipeline import FrameRecord, GpuPipeline
from repro.predict.base import Predictor


class Phase(enum.Enum):
    LEARNING = "learning"
    PREDICTION = "prediction"


@dataclass
class LearnedFrame:
    """Aggregates the FRPU derives from the RTP table after learning."""

    n_rtp: int
    c_avg: float                  # average GPU cycles per RTP
    llc_accesses: int             # A: LLC accesses per frame
    updates_per_rtp: float
    rtts_per_rtp: float
    llc_per_rtp: float


@dataclass
class PredictionSample:
    frame_index: int
    lam: float
    predicted_cycles: float


class RtpExtrapolator(Predictor):
    name = "rtp"

    def __init__(self, rtp_entries: int = 64, verify_threshold: float = 0.25,
                 correct_throttle: bool = True, skip_frames: int = 1,
                 ewma_alpha: float = 0.4, seed: int = 0, telemetry=None):
        from repro.config import ConfigError
        if rtp_entries < 1:
            raise ConfigError(
                f"frpu.rtp_entries must be >= 1, got {rtp_entries!r}")
        if not 0.0 < verify_threshold <= 1.0:
            raise ConfigError("frpu.verify_threshold must be in (0, 1], "
                              f"got {verify_threshold!r}")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ConfigError("frpu.ewma_alpha must be in (0, 1], "
                              f"got {ewma_alpha!r}")
        super().__init__(correct_throttle=correct_throttle,
                         skip_frames=skip_frames, seed=seed,
                         telemetry=telemetry)
        self.table = RtpInfoTable(rtp_entries)
        self.verify_threshold = verify_threshold
        #: after each verified frame the learned aggregates track the
        #: observed workload with this EWMA weight, so slow drift in
        #: contention does not require a full re-learning round trip
        self.ewma_alpha = ewma_alpha
        self.phase = Phase.LEARNING
        self.learned: Optional[LearnedFrame] = None
        self.phase_transitions: list[tuple[int, Phase]] = []

    # -- the Predictor contract ----------------------------------------------

    @property
    def ready(self) -> bool:
        return self.phase is Phase.PREDICTION

    def frame_llc_accesses(self) -> int:
        return self.learned.llc_accesses if self.learned else 0

    def storage_bits(self) -> int:
        # the RTP information table plus a dozen 4-byte working
        # registers (N_G, W_G, tokens, learned aggregates, phase/state)
        return self.table.storage_bits() + 12 * 32

    # -- prediction (Eqs. 1-3) -----------------------------------------------

    def predict_frame_cycles(self, pipeline: GpuPipeline) -> Optional[float]:
        """Projected cycles for the frame currently being rendered."""
        if self.phase is not Phase.PREDICTION or self.learned is None:
            return None
        lam = pipeline.frame_progress
        c_avg = self.learned.c_avg
        records = pipeline.current_rtp_records()
        if records:
            cycles = sum(r.cycles for r in records)
            if self.correct_throttle:
                cycles -= sum(r.throttle_ticks for r in records)
            c_inter = max(cycles / len(records), 1.0)
        else:
            # no RTP finished yet in this frame: extrapolate from elapsed
            elapsed = pipeline.current_frame_elapsed_cycles()
            if self.correct_throttle:
                elapsed -= pipeline.current_frame_throttle_cycles()
            frac = lam * self.learned.n_rtp
            c_inter = (elapsed / frac) if frac > 0.05 else c_avg
            # first-frame edge: before any RTP completes a throttled or
            # freshly-started frame can observe a non-positive natural
            # elapsed time; a non-positive C_inter would project a
            # nonsense (negative) frame and open the throttle at full
            # width, so floor it like the records branch does.  The
            # floor is inert whenever C_inter is already sane, keeping
            # the golden byte streams bit-identical.
            if c_inter < 1.0:
                c_inter = c_avg if c_avg >= 1.0 else 1.0
        c_rtp = lam * c_inter + (1.0 - lam) * c_avg
        f = c_rtp * self.learned.n_rtp
        # keep the latest mid-frame prediction for error accounting
        if 0.25 <= lam <= 0.75:
            self._note_mid_frame(pipeline._frame_idx, f)
        return f

    # -- frame completion: learn or verify -----------------------------------

    def _observe(self, rec: FrameRecord) -> None:
        if self.phase is Phase.LEARNING:
            self._learn(rec)
            return
        if not self._verify(rec):
            self.table.reset()
            self.learned = None
            self._mid_frame_prediction.clear()
            self.phase = Phase.LEARNING
            self.phase_transitions.append((rec.index, Phase.LEARNING))
            if self.telemetry is not None:
                self.telemetry.emit(
                    "frpu_phase", tick=rec.end_time, frame=rec.index,
                    phase=Phase.LEARNING.value,
                    actual_cycles=rec.cycles)
        else:
            self._refresh(rec)

    def _refresh(self, rec: FrameRecord) -> None:
        """EWMA-track the learned aggregates with a verified frame."""
        a = self.ewma_alpha
        learned = self.learned
        n = max(len(rec.rtps), 1)
        cycles = rec.cycles - (rec.throttle_ticks
                               if self.correct_throttle else 0)
        llc = sum(r.llc_accesses for r in rec.rtps)
        learned.c_avg = (1 - a) * learned.c_avg + a * (cycles / n)
        learned.llc_accesses = int((1 - a) * learned.llc_accesses + a * llc)
        learned.updates_per_rtp = ((1 - a) * learned.updates_per_rtp +
                                   a * sum(r.updates for r in rec.rtps) / n)
        learned.rtts_per_rtp = ((1 - a) * learned.rtts_per_rtp +
                                a * sum(r.n_rtts for r in rec.rtps) / n)
        learned.llc_per_rtp = (1 - a) * learned.llc_per_rtp + a * llc / n

    def _learn(self, rec: FrameRecord) -> None:
        self.table.reset()
        for r in rec.rtps:
            self.table.record(r.updates, r.cycles - (
                r.throttle_ticks if self.correct_throttle else 0),
                r.n_rtts, r.llc_accesses)
        n = self.table.n_rtps
        if n == 0:
            return                     # empty frame: stay learning
        entries = self.table.valid_entries()
        self.learned = LearnedFrame(
            n_rtp=n,
            c_avg=self.table.avg_cycles_per_rtp(),
            llc_accesses=self.table.total_llc_accesses(),
            updates_per_rtp=sum(e.updates for e in entries) / n,
            rtts_per_rtp=sum(e.n_rtts for e in entries) / n,
            llc_per_rtp=sum(e.llc_accesses for e in entries) / n,
        )
        self.frames_learned += 1
        self.phase = Phase.PREDICTION
        self.phase_transitions.append((rec.index, Phase.PREDICTION))
        if self.telemetry is not None:
            self.telemetry.emit(
                "frpu_phase", tick=rec.end_time, frame=rec.index,
                phase=Phase.PREDICTION.value, n_rtp=self.learned.n_rtp,
                c_avg=self.learned.c_avg, actual_cycles=rec.cycles)

    def _verify(self, rec: FrameRecord) -> bool:
        """Cross-verification: does this frame still match the learning?"""
        learned = self.learned
        if learned is None:
            return False
        if not rec.rtps:
            return False
        thr = self.verify_threshold

        def drift(observed: float, expected: float) -> float:
            if expected <= 0:
                return 0.0 if observed <= 0 else 1.0
            return abs(observed - expected) / expected

        n_rtp_obs = len(rec.rtps)
        if drift(n_rtp_obs, learned.n_rtp) > thr:
            return False
        upd = sum(r.updates for r in rec.rtps) / n_rtp_obs
        rtts = sum(r.n_rtts for r in rec.rtps) / n_rtp_obs
        llc = sum(r.llc_accesses for r in rec.rtps) / n_rtp_obs
        return (drift(upd, learned.updates_per_rtp) <= thr and
                drift(rtts, learned.rtts_per_rtp) <= thr and
                drift(llc, learned.llc_per_rtp) <= thr)

    # -- telemetry: the pre-seam byte stream ---------------------------------

    def _emit_error(self, rec: FrameRecord, pred: float,
                    actual: float) -> None:
        # the reference predictor predates the seam: its error records
        # keep the original `frpu_error` type (no predictor field) so
        # default-run telemetry streams stay bit-identical
        if self.telemetry is not None:
            self.telemetry.emit(
                "frpu_error", tick=rec.end_time, frame=rec.index,
                predicted_cycles=pred, actual_cycles=actual,
                error_pct=100.0 * (pred - actual) / actual)
