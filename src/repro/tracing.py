"""LLC-level trace capture and replay.

The paper's workloads are API traces replayed through a GPU simulator;
this module provides the equivalent workflow for *memory* traces of our
system: record every LLC-bound request of a live run to a compact
``.npz`` bundle, inspect it offline, and replay a recorded stream back
into a fresh system as a stand-in workload agent.

Recording is a tap on the system's send hooks (zero behavioural
impact); replay preserves inter-request spacing, optionally time-scaled.

    system = HeterogeneousSystem(cfg, mix)
    rec = TraceRecorder.attach(system)
    system.run()
    rec.save("m7.npz")

    trace = LlcTrace.load("m7.npz")
    print(trace.summary())
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mem.request import (CPU_KINDS, CPU_SOURCES, GPU_KINDS,
                               GPU_SOURCE, MemRequest)

#: stable codes for sources and kinds in the on-disk arrays, derived
#: from the request-layer constants so a new source/kind automatically
#: gets a code (``tests/test_tracing.py`` asserts the two stay in
#: sync).  Codes follow declaration order: cpu0..cpu15 then gpu;
#: CPU kinds then GPU kinds.
SOURCE_CODES = {s: i for i, s in enumerate(CPU_SOURCES)}
SOURCE_CODES[GPU_SOURCE] = len(CPU_SOURCES)
KIND_CODES = {k: i for i, k in enumerate(CPU_KINDS + GPU_KINDS)}
_SOURCE_NAMES = {v: k for k, v in SOURCE_CODES.items()}
_KIND_NAMES = {v: k for k, v in KIND_CODES.items()}


@dataclass
class LlcTrace:
    """A recorded LLC-request stream as parallel arrays."""

    times: np.ndarray         # int64 ticks
    addrs: np.ndarray         # int64 byte addresses
    writes: np.ndarray        # bool
    sources: np.ndarray       # uint8 codes
    kinds: np.ndarray         # uint8 codes

    def __len__(self) -> int:
        return len(self.times)

    def save(self, path: str) -> None:
        np.savez_compressed(path, times=self.times, addrs=self.addrs,
                            writes=self.writes, sources=self.sources,
                            kinds=self.kinds)

    @classmethod
    def load(cls, path: str) -> "LlcTrace":
        z = np.load(path)
        return cls(z["times"], z["addrs"], z["writes"], z["sources"],
                   z["kinds"])

    def filter_source(self, source: str) -> "LlcTrace":
        mask = self.sources == SOURCE_CODES[source]
        return LlcTrace(self.times[mask], self.addrs[mask],
                        self.writes[mask], self.sources[mask],
                        self.kinds[mask])

    def summary(self) -> dict:
        out = {"requests": int(len(self)),
               "span_ticks": int(self.times[-1] - self.times[0])
               if len(self) else 0,
               "write_frac": float(self.writes.mean()) if len(self)
               else 0.0}
        for code in np.unique(self.sources):
            name = _SOURCE_NAMES.get(int(code), f"src{code}")
            out[f"from_{name}"] = int((self.sources == code).sum())
        return out


class TraceRecorder:
    """Tap on a system's LLC-send paths."""

    def __init__(self):
        self._times: list[int] = []
        self._addrs: list[int] = []
        self._writes: list[bool] = []
        self._sources: list[int] = []
        self._kinds: list[int] = []

    @classmethod
    def attach(cls, system) -> "TraceRecorder":
        rec = cls()
        orig_cpu = system._cpu_send
        orig_gpu = system._gpu_send

        def cpu_send(req: MemRequest):
            rec.note(system.sim.now, req)
            orig_cpu(req)

        def gpu_send(req: MemRequest):
            rec.note(system.sim.now, req)
            orig_gpu(req)
        system._cpu_send = cpu_send
        system._gpu_send = gpu_send
        # rebind the already-constructed agents' send hooks
        for core in system.cores:
            core.llc_send = cpu_send
        if system.gpu is not None:
            system.gpu.llc_send = gpu_send
        return rec

    def note(self, now: int, req: MemRequest) -> None:
        self._times.append(now)
        self._addrs.append(req.addr)
        self._writes.append(req.is_write)
        self._sources.append(SOURCE_CODES.get(req.source, 255))
        self._kinds.append(KIND_CODES.get(req.kind, 255))

    def trace(self) -> LlcTrace:
        return LlcTrace(np.array(self._times, dtype=np.int64),
                        np.array(self._addrs, dtype=np.int64),
                        np.array(self._writes, dtype=bool),
                        np.array(self._sources, dtype=np.uint8),
                        np.array(self._kinds, dtype=np.uint8))

    def save(self, path: str) -> None:
        self.trace().save(path)


class TraceReplayer:
    """Replays a recorded stream into an LLC as an open-loop agent.

    Requests are issued at their recorded inter-arrival spacing (scaled
    by ``time_scale``); the replay is open-loop — it does not react to
    responses — which makes it a reproducible background-traffic
    generator for memory-system experiments.
    """

    def __init__(self, sim, trace: LlcTrace, send, time_scale:
                 float = 1.0):
        self.sim = sim
        self.trace = trace
        self.send = send
        self.time_scale = time_scale
        self.issued = 0
        self.completed = 0

    def start(self) -> None:
        if not len(self.trace):
            return
        t0 = int(self.trace.times[0])
        base_now = self.sim.now
        for i in range(len(self.trace)):
            delay = int((int(self.trace.times[i]) - t0) * self.time_scale)
            self.sim.at(base_now + delay, self._make_issue(i))

    def _make_issue(self, i: int):
        def issue():
            tr = self.trace
            kind = _KIND_NAMES.get(int(tr.kinds[i]), "data")
            source = _SOURCE_NAMES.get(int(tr.sources[i]), "cpu0")
            is_write = bool(tr.writes[i])
            req = MemRequest(int(tr.addrs[i]), is_write, source, kind,
                             on_done=(self._done if not is_write
                                      else None),
                             created_at=self.sim.now)
            self.issued += 1
            self.send(req)
        return issue

    def _done(self, req: MemRequest) -> None:
        self.completed += 1
