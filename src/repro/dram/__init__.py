"""DDR3 DRAM model: banks, channels, controllers, access schedulers."""

from repro.dram.bank import Bank
from repro.dram.controller import MemoryController, DramSystem
from repro.dram.schedulers import (
    FrFcfsScheduler, CpuPriorityScheduler, SmsScheduler, DynPrioScheduler,
    make_scheduler,
)

__all__ = [
    "Bank", "MemoryController", "DramSystem",
    "FrFcfsScheduler", "CpuPriorityScheduler", "SmsScheduler",
    "DynPrioScheduler", "make_scheduler",
]
