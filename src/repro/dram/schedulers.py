"""DRAM access schedulers.

The baseline is FR-FCFS (row hits first, then oldest).  The paper's
proposal optionally boosts CPU priority (:class:`CpuPriorityScheduler`);
the comparison policies are SMS (staged memory scheduler, batch formation
plus a probabilistic shortest-batch-first / round-robin stage) and DynPrio
(deadline-aware priority levels driven by frame progress).

A scheduler sees *issuable* entries (bank ready at ``now``) and picks one.
SMS additionally intercepts read enqueues to form source batches.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.dram.controller import PendingReq, MemoryController


class FrFcfsScheduler:
    """First-ready, first-come-first-served.

    Row hits win, oldest-first among equals.  Like every practical
    FR-FCFS implementation, a starvation cap bounds how long a
    row-miss request can be bypassed by a stream of row hits
    (``starvation_ticks``); without it a row-streaming GPU can starve
    CPU requests indefinitely.
    """

    name = "fr-fcfs"

    def __init__(self, starvation_ticks: int = 400):
        self.starvation_ticks = starvation_ticks

    def on_enqueue(self, entry: "PendingReq") -> bool:
        """Return True if the scheduler consumed the entry (SMS does)."""
        return False

    def select(self, ctrl: "MemoryController",
               candidates: Sequence["PendingReq"]) -> Optional["PendingReq"]:
        if not candidates:
            return None
        now = ctrl.sim.now
        oldest = min(candidates, key=lambda e: e.arrival)
        if now - oldest.arrival >= self.starvation_ticks:
            return oldest
        best = None
        best_key = None
        for e in candidates:
            row_hit = ctrl.banks[e.bank].open_row == e.row
            key = (not row_hit, e.arrival)
            if best_key is None or key < best_key:
                best, best_key = e, key
        return best


class CpuPriorityScheduler(FrFcfsScheduler):
    """FR-FCFS with a dynamic CPU-over-GPU priority boost.

    ``boost`` is flipped by the QoS controller: it is raised only while
    the GPU is being throttled (i.e. it comfortably meets the target
    frame rate), exactly as in Section III-C.
    """

    name = "cpu-priority"

    def __init__(self, starvation_ticks: int = 400) -> None:
        super().__init__(starvation_ticks)
        self.boost = False

    def select(self, ctrl, candidates):
        if not candidates:
            return None
        if not self.boost:
            return super().select(ctrl, candidates)
        # boosted: CPU first; a generous starvation guard keeps gated GPU
        # traffic from livelocking behind an endless CPU stream
        oldest = min(candidates, key=lambda e: e.arrival)
        if ctrl.sim.now - oldest.arrival >= 4 * self.starvation_ticks:
            return oldest
        best = None
        best_key = None
        for e in candidates:
            row_hit = ctrl.banks[e.bank].open_row == e.row
            key = (e.is_gpu, not row_hit, e.arrival)
            if best_key is None or key < best_key:
                best, best_key = e, key
        return best


class DynPrioScheduler(FrFcfsScheduler):
    """Three-level priority driven by GPU frame progress (Jeong et al.).

    ``mode``:
      * ``"cpu_high"`` — GPU ahead of schedule: CPU first (their default)
      * ``"equal"``    — GPU lagging: plain FR-FCFS
      * ``"gpu_high"`` — last 10% of frame time: GPU first
    """

    name = "dynprio"

    def __init__(self, starvation_ticks: int = 400) -> None:
        super().__init__(starvation_ticks)
        self.mode = "equal"

    def select(self, ctrl, candidates):
        if not candidates:
            return None
        mode = self.mode
        best = None
        best_key = None
        for e in candidates:
            row_hit = ctrl.banks[e.bank].open_row == e.row
            if mode == "gpu_high":
                key = (not e.is_gpu, not row_hit, e.arrival)
            elif mode == "cpu_high":
                # soft demotion: GPU row-hits still stream (a full
                # freeze would build an unrecoverable backlog); GPU
                # row-misses yield to all CPU traffic
                key = (e.is_gpu and not row_hit, not row_hit, e.arrival)
            else:
                key = (False, not row_hit, e.arrival)
            if best_key is None or key < best_key:
                best, best_key = e, key
        return best


class _Batch:
    __slots__ = ("source", "entries", "last_row", "opened_at")

    def __init__(self, source: str, opened_at: int):
        self.source = source
        self.entries: list = []
        self.last_row: Optional[tuple[int, int]] = None
        self.opened_at = opened_at


class SmsScheduler:
    """Staged memory scheduler (Ausavarungnirun et al., ISCA'12).

    Stage 1 groups each source's reads into row-local batches; a batch
    closes on a row change, on reaching ``batch_cap``, or after
    ``age_limit`` ticks.  Stage 2 picks the next batch to service:
    shortest-batch-first with probability ``p`` (favours latency-sensitive
    CPU jobs), round-robin otherwise.  Requests are *not visible* to the
    bank scheduler until their batch is released — this batching delay is
    why SMS loses GPU FPS in Figs. 12–13.
    """

    name = "sms"

    def __init__(self, p_sjf: float = 0.9, batch_cap: int = 16,
                 age_limit: int = 2000, seed: int = 7):
        self.p_sjf = p_sjf
        self.batch_cap = batch_cap
        self.age_limit = age_limit
        self._rng = random.Random(seed)
        self._forming: dict[str, _Batch] = {}
        self._ready: list[_Batch] = []
        self._current: Optional[_Batch] = None
        self._rr_next = 0
        self.now_fn = lambda: 0       # wired by the controller

    # -- stage 1: batch formation ------------------------------------------

    def on_enqueue(self, entry) -> bool:
        if entry.is_write:
            return False              # writes use the normal drain path
        src = entry.source
        now = self.now_fn()
        batch = self._forming.get(src)
        rowkey = (entry.bank, entry.row)
        if batch is not None and (
                len(batch.entries) >= self.batch_cap or
                (batch.last_row is not None and batch.last_row != rowkey)):
            self._release(src)
            batch = None
        if batch is None:
            batch = self._forming[src] = _Batch(src, now)
        batch.entries.append(entry)
        batch.last_row = rowkey
        return True

    def _release(self, src: str) -> None:
        batch = self._forming.pop(src, None)
        if batch is not None and batch.entries:
            self._ready.append(batch)

    def _expire_old(self) -> None:
        now = self.now_fn()
        for src in [s for s, b in self._forming.items()
                    if now - b.opened_at >= self.age_limit]:
            self._release(src)

    # -- stage 2: batch scheduling ------------------------------------------

    def _next_batch(self) -> Optional[_Batch]:
        self._expire_old()
        if not self._ready:
            # nothing released yet: force-release the oldest forming batch
            if self._forming:
                oldest = min(self._forming, key=lambda s:
                             self._forming[s].opened_at)
                self._release(oldest)
        if not self._ready:
            return None
        if self._rng.random() < self.p_sjf:
            idx = min(range(len(self._ready)),
                      key=lambda i: (len(self._ready[i].entries),
                                     self._ready[i].opened_at))
        else:
            # round-robin between the CPU and GPU *classes* ("enforcing
            # fairness among bandwidth-sensitive CPU and GPU jobs"):
            # alternating over individual sources would starve the GPU
            # behind N CPU cores
            classes = sorted({b.source == "gpu" for b in self._ready})
            want_gpu = classes[self._rr_next % len(classes)]
            self._rr_next += 1
            idx = next(i for i, b in enumerate(self._ready)
                       if (b.source == "gpu") == want_gpu)
        return self._ready.pop(idx)

    def select(self, ctrl, candidates):
        # writes (drain path) still arrive via candidates
        writes = [e for e in candidates if e.is_write]
        if writes:
            return min(writes, key=lambda e: e.arrival)
        if self._current is None or not self._current.entries:
            self._current = self._next_batch()
        if self._current is None:
            return None
        # serve the current batch in order, but only if its bank is ready
        entry = self._current.entries[0]
        if ctrl.banks[entry.bank].ready_at <= ctrl.sim.now:
            self._current.entries.pop(0)
            return entry
        # head-of-line blocked: the current batch's bank is busy, so
        # fall through to the oldest released batch whose head targets
        # an idle bank (the current batch keeps its position and
        # resumes once its bank frees up)
        for batch in self._ready:
            e = batch.entries[0]
            if ctrl.banks[e.bank].ready_at <= ctrl.sim.now:
                batch.entries.pop(0)
                if not batch.entries:
                    self._ready.remove(batch)
                return e
        return None

    def pending_reads(self) -> int:
        n = sum(len(b.entries) for b in self._ready)
        n += sum(len(b.entries) for b in self._forming.values())
        if self._current is not None:
            n += len(self._current.entries)
        return n

    def earliest_hint(self) -> Optional[int]:
        """Earliest time a forming batch would age out."""
        if not self._forming:
            return None
        return min(b.opened_at + self.age_limit
                   for b in self._forming.values())


def make_scheduler(name: str, **kwargs):
    """Scheduler registry used by policies and the system builder."""
    if name in ("fr-fcfs", "frfcfs", "baseline"):
        return FrFcfsScheduler()
    if name in ("cpu-priority", "cpuprio"):
        return CpuPriorityScheduler()
    if name == "dynprio":
        return DynPrioScheduler()
    if name == "sms":
        return SmsScheduler(**kwargs)
    raise KeyError(f"unknown DRAM scheduler {name!r}")
