"""DDR3-2133 timing helpers.

:class:`repro.config.DramTiming` holds the raw parameters (in DRAM
command-bus cycles); this module converts them to simulator ticks and
derives the per-access latency classes used by the bank state machine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.config import DRAM_CYCLE_TICKS, DramTiming


def _to_ticks(cycles, cycle_ticks: int) -> int:
    """Convert a cycle count to integer ticks, rounding *up*.

    ``DramTiming`` fields are integer DRAM cycles by convention, but
    nothing stops a caller from deriving them from nanosecond datasheet
    values and passing a float.  ``int()`` truncation would then
    *shorten* the constraint — a protocol violation that under-waits —
    and a raw multiply would silently float-taint every ``ready_at``
    comparison downstream.  Ceiling is exact for ints and conservative
    for fractions (pinned by ``tests/dram/test_timing_exact.py``).
    """
    return math.ceil(cycles * cycle_ticks)


@dataclass(frozen=True)
class TimingTicks:
    """All DDR timing values converted to simulator ticks."""

    t_cas: int
    t_rcd: int
    t_rp: int
    t_ras: int
    burst: int
    t_wr: int
    t_wtr: int
    t_rtp: int
    t_refi: int = 0
    t_rfc: int = 0
    t_faw: int = 0

    @classmethod
    def from_timing(cls, t: DramTiming,
                    cycle_ticks: int = DRAM_CYCLE_TICKS) -> "TimingTicks":
        return cls(
            t_cas=_to_ticks(t.t_cas, cycle_ticks),
            t_rcd=_to_ticks(t.t_rcd, cycle_ticks),
            t_rp=_to_ticks(t.t_rp, cycle_ticks),
            t_ras=_to_ticks(t.t_ras, cycle_ticks),
            burst=_to_ticks(t.burst_cycles, cycle_ticks),
            t_wr=_to_ticks(t.t_wr, cycle_ticks),
            t_wtr=_to_ticks(t.t_wtr, cycle_ticks),
            t_rtp=_to_ticks(t.t_rtp, cycle_ticks),
            t_refi=_to_ticks(t.t_refi, cycle_ticks),
            t_rfc=_to_ticks(t.t_rfc, cycle_ticks),
            t_faw=_to_ticks(t.t_faw, cycle_ticks),
        )

    def access_ticks(self, row_state: str) -> int:
        """Command-to-data latency for a request hitting a bank whose row
        buffer is in ``row_state`` ('hit' | 'closed' | 'conflict')."""
        if row_state == "hit":
            return self.t_cas
        if row_state == "closed":
            return self.t_rcd + self.t_cas
        if row_state == "conflict":
            return self.t_rp + self.t_rcd + self.t_cas
        raise ValueError(f"unknown row state {row_state!r}")
