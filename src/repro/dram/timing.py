"""DDR3-2133 timing helpers.

:class:`repro.config.DramTiming` holds the raw parameters (in DRAM
command-bus cycles); this module converts them to simulator ticks and
derives the per-access latency classes used by the bank state machine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import DRAM_CYCLE_TICKS, DramTiming


@dataclass(frozen=True)
class TimingTicks:
    """All DDR timing values converted to simulator ticks."""

    t_cas: int
    t_rcd: int
    t_rp: int
    t_ras: int
    burst: int
    t_wr: int
    t_wtr: int
    t_rtp: int
    t_refi: int = 0
    t_rfc: int = 0
    t_faw: int = 0

    @classmethod
    def from_timing(cls, t: DramTiming,
                    cycle_ticks: int = DRAM_CYCLE_TICKS) -> "TimingTicks":
        return cls(
            t_cas=t.t_cas * cycle_ticks,
            t_rcd=t.t_rcd * cycle_ticks,
            t_rp=t.t_rp * cycle_ticks,
            t_ras=t.t_ras * cycle_ticks,
            burst=t.burst_cycles * cycle_ticks,
            t_wr=t.t_wr * cycle_ticks,
            t_wtr=t.t_wtr * cycle_ticks,
            t_rtp=t.t_rtp * cycle_ticks,
            t_refi=t.t_refi * cycle_ticks,
            t_rfc=t.t_rfc * cycle_ticks,
            t_faw=t.t_faw * cycle_ticks,
        )

    def access_ticks(self, row_state: str) -> int:
        """Command-to-data latency for a request hitting a bank whose row
        buffer is in ``row_state`` ('hit' | 'closed' | 'conflict')."""
        if row_state == "hit":
            return self.t_cas
        if row_state == "closed":
            return self.t_rcd + self.t_cas
        if row_state == "conflict":
            return self.t_rp + self.t_rcd + self.t_cas
        raise ValueError(f"unknown row state {row_state!r}")
