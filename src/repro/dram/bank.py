"""One DRAM bank: row-buffer state machine with legality checks."""

from __future__ import annotations

from typing import Optional

from repro.dram.timing import TimingTicks


class Bank:
    """Row-buffer state + earliest next-command time for one bank."""

    __slots__ = ("index", "open_row", "ready_at", "row_hits", "row_misses",
                 "row_conflicts", "activations", "queued", "queued_r",
                 "queued_w")

    def __init__(self, index: int):
        self.index = index
        self.open_row: Optional[int] = None
        self.ready_at: int = 0
        self.row_hits = 0
        self.row_misses = 0
        self.row_conflicts = 0
        self.activations = 0
        #: transactions currently waiting on this bank (maintained by
        #: the controller: +1 at enqueue, -1 when the command issues) —
        #: the per-bank queue-depth gauge span tracing reports
        self.queued = 0
        #: the same population split by direction — the controller's
        #: batched issue scan decides "does any ready bank hold a
        #: candidate?" from these two counters in O(banks) instead of
        #: walking the request queues (``queued == queued_r + queued_w``
        #: always; checked by the invariant monitor's bank accounting)
        self.queued_r = 0
        self.queued_w = 0

    def row_state(self, row: int) -> str:
        if self.open_row is None:
            return "closed"
        return "hit" if self.open_row == row else "conflict"

    def service(self, row: int, now: int, timing: TimingTicks, *,
                is_write: bool, open_page: bool,
                bus_free_at: int) -> tuple[int, int]:
        """Issue one line transfer to this bank.

        Returns ``(data_start, done)`` in ticks and advances the bank
        state.  The caller enforces the command-bus rate and the shared
        data bus (``bus_free_at``).

        Boundary convention (audited, pinned by
        ``tests/dram/test_timing_exact.py``): ``ready_at`` is the first
        tick a command *may* issue, so issuing at ``now == ready_at`` is
        legal and only ``now < ready_at`` is a protocol violation.  The
        data bus is symmetric — a transfer occupies ``[data_start,
        done)`` and the next one may start at exactly ``done``.
        """
        if now < self.ready_at:
            raise RuntimeError(
                f"bank {self.index} commanded at {now} < ready {self.ready_at}")
        state = self.row_state(row)
        if state == "hit":
            self.row_hits += 1
        elif state == "closed":
            self.row_misses += 1
            self.activations += 1
        else:
            self.row_conflicts += 1
            self.activations += 1
        access = timing.access_ticks(state)
        data_start = max(now + access, bus_free_at)
        done = data_start + timing.burst
        # Simplified bank hold: busy until data completes, plus write
        # recovery after writes.
        self.ready_at = done + (timing.t_wr if is_write else 0)
        self.open_row = row if open_page else None
        return data_start, done
