"""One DRAM bank: row-buffer state machine with legality checks."""

from __future__ import annotations

from typing import Optional

from repro.dram.timing import TimingTicks


class Bank:
    """Row-buffer state + earliest next-command time for one bank."""

    __slots__ = ("index", "open_row", "ready_at", "row_hits", "row_misses",
                 "row_conflicts", "activations", "queued")

    def __init__(self, index: int):
        self.index = index
        self.open_row: Optional[int] = None
        self.ready_at: int = 0
        self.row_hits = 0
        self.row_misses = 0
        self.row_conflicts = 0
        self.activations = 0
        #: transactions currently waiting on this bank (maintained by
        #: the controller: +1 at enqueue, -1 when the command issues) —
        #: the per-bank queue-depth gauge span tracing reports
        self.queued = 0

    def row_state(self, row: int) -> str:
        if self.open_row is None:
            return "closed"
        return "hit" if self.open_row == row else "conflict"

    def service(self, row: int, now: int, timing: TimingTicks, *,
                is_write: bool, open_page: bool,
                bus_free_at: int) -> tuple[int, int]:
        """Issue one line transfer to this bank.

        Returns ``(data_start, done)`` in ticks and advances the bank
        state.  The caller enforces the command-bus rate and the shared
        data bus (``bus_free_at``).
        """
        if now < self.ready_at:
            raise RuntimeError(
                f"bank {self.index} commanded at {now} < ready {self.ready_at}")
        state = self.row_state(row)
        if state == "hit":
            self.row_hits += 1
        elif state == "closed":
            self.row_misses += 1
            self.activations += 1
        else:
            self.row_conflicts += 1
            self.activations += 1
        access = timing.access_ticks(state)
        data_start = max(now + access, bus_free_at)
        done = data_start + timing.burst
        # Simplified bank hold: busy until data completes, plus write
        # recovery after writes.
        self.ready_at = done + (timing.t_wr if is_write else 0)
        self.open_row = row if open_page else None
        return data_start, done
