"""Per-channel memory controller and the multi-channel DRAM system.

Each controller owns one DDR3 channel: per-bank row-buffer state, split
read/write queues with write-drain hysteresis, a shared data bus, and a
pluggable access scheduler (FR-FCFS by default).  Command issue is paced
at one command per DRAM cycle; bank-level parallelism emerges because a
bank only blocks its own next command while the data bus serialises the
actual transfers.

Batched issue path
------------------
``_try_issue`` fires once per DRAM command cycle while work is queued,
and most firings are *no-op polls*: every ready bank is waiting on
something else (typically writes parked below the drain watermark while
reads are outstanding).  The legacy path priced each poll at O(queue) —
a per-entry issuable scan plus a per-entry retry-hint scan.  The batched
path (default, see :mod:`repro.hotpath`) answers both questions in a
*single* O(banks) pass: ``Bank.queued_r``/``queued_w`` mirror exactly
the queue membership the legacy scans walked, so the candidate list,
the selection, *and the retry tick* are all identical — the poll
*cadence* is deliberately preserved, because each poll's position in
the kernel's ``(time, seq)`` order decides whether it observes a
same-tick enqueue or completion, making the re-poll chain semantically
visible.  (A sharper hint that skipped the parked-writes re-polls was
tried and measurably diverged the simulation; see
:meth:`MemoryController._batched_poll`.)  The issue sequence, and
therefore every simulated result, is unchanged; only the per-poll cost
drops from O(queue) to O(banks).  The fast
path is enabled only under the preconditions that make the equivalence
provable (a queue-transparent FR-FCFS-family scheduler and tFAW
disabled — the default configuration); anything else takes the legacy
path.  Bit-identity of the two paths is enforced by
``tests/sim/test_hotpath_golden.py``.
"""

from __future__ import annotations

import math
from typing import Optional

from repro import hotpath
from repro.config import DRAM_CYCLE_TICKS, DramConfig, LINE_BYTES
from repro.dram.bank import Bank
from repro.dram.schedulers import (CpuPriorityScheduler, DynPrioScheduler,
                                   FrFcfsScheduler, SmsScheduler)
from repro.dram.timing import TimingTicks
from repro.mem.request import MemRequest
from repro.sim.engine import Simulator
from repro.sim.stats import StatSet

#: scheduler types whose ``select`` is pure and whose reads all live in
#: ``read_q`` (``on_enqueue`` never absorbs) — the provable-equivalence
#: precondition for the batched issue path.  Exact types, not
#: ``isinstance``: a subclass may override ``select`` with side effects
#: the batched no-op path would skip.
_BATCH_SAFE_SCHEDULERS = (FrFcfsScheduler, CpuPriorityScheduler,
                          DynPrioScheduler)

#: closure-free completion: ``at_call(t, _COMPLETE, req)`` avoids
#: allocating a ``req.complete`` bound method per served transaction
_COMPLETE = MemRequest.complete


class PendingReq:
    """One queued DRAM transaction (line granularity)."""

    __slots__ = ("req", "row", "bank", "arrival", "is_write", "is_gpu",
                 "source")

    def __init__(self, req: MemRequest, row: int, bank: int, arrival: int):
        self.req = req
        self.row = row
        self.bank = bank
        self.arrival = arrival
        self.is_write = req.is_write
        self.is_gpu = req.is_gpu
        self.source = req.source


class MemoryController:
    def __init__(self, sim: Simulator, cfg: DramConfig, channel_id: int,
                 scheduler=None, *, line_bytes: int = LINE_BYTES,
                 channel_bits: Optional[int] = None):
        self.sim = sim
        self.cfg = cfg
        self.channel_id = channel_id
        self.timing = TimingTicks.from_timing(cfg.timing)
        nbanks = cfg.banks_per_rank * cfg.ranks_per_channel
        self.banks = [Bank(i) for i in range(nbanks)]
        self.scheduler = scheduler if scheduler is not None \
            else FrFcfsScheduler()
        if hasattr(self.scheduler, "now_fn"):
            self.scheduler.now_fn = lambda: self.sim.now
        self.read_q: list[PendingReq] = []
        self.write_q: list[PendingReq] = []
        self.bus_free_at = 0
        self._draining = False
        self._try_event = None
        #: rolling ACTIVATE timestamps for the tFAW constraint
        self._act_times: list[int] = []
        self.refreshes = 0
        self._refresh_applied = 0
        #: span tracer (None unless the system wires one); only touched
        #: when the entering request carries a sampled span
        self.tracer = None

        # address mapping (within the channel): row : bank : column : line.
        # The channel-select bits sit at line granularity ("line",
        # "bank-xor") or at row granularity ("row") and are stripped
        # before the bank/row decomposition.
        self._line_shift = line_bytes.bit_length() - 1
        if channel_bits is None:
            channel_bits = max(cfg.channels - 1, 0).bit_length()
        self._chan_bits = channel_bits
        self._strip_shift = (cfg.row_bytes.bit_length() - 1
                             if cfg.mapping == "row"
                             else self._line_shift)
        lines_per_row = cfg.row_bytes // line_bytes
        if lines_per_row < 1 or lines_per_row & (lines_per_row - 1):
            # the shift/mask decomposition below silently corrupts the
            # bank/row mapping for non-power-of-two geometries
            raise ValueError(
                f"row_bytes/line_bytes must be a power of two, got "
                f"{cfg.row_bytes}/{line_bytes}")
        self._col_bits = lines_per_row.bit_length() - 1
        self._col_mask = lines_per_row - 1
        self._bank_bits = (nbanks - 1).bit_length() if nbanks > 1 else 0
        self._bank_mask = nbanks - 1

        # drain watermarks, precomputed once.  ``hi`` rounds *up*: the
        # queue drains when it is at least ``write_drain_hi`` full, and
        # with e.g. 64 * 0.8 = 51.2 the first integer occupancy at or
        # above 80% is 52 — truncation fired one entry early (the
        # off-by-one class this module was audited for).  ``lo`` rounds
        # down for the symmetric reason: draining stops once occupancy
        # is at or below the fraction.
        self._drain_hi = math.ceil(cfg.write_queue * cfg.write_drain_hi)
        self._drain_lo = math.floor(cfg.write_queue * cfg.write_drain_lo)

        #: batched issue path (see module docstring): per-bank counter
        #: scans replace the per-entry queue walks.  Decided once at
        #: construction — the preconditions cannot change mid-run.
        self._fast = (hotpath.use_batching()
                      and self.timing.t_faw <= 0
                      and type(self.scheduler) in _BATCH_SAFE_SCHEDULERS)

        self.stats = StatSet(f"mc{channel_id}")
        s = self.stats
        self._served = {("cpu", False): s.counter("cpu_reads"),
                        ("cpu", True): s.counter("cpu_writes"),
                        ("gpu", False): s.counter("gpu_reads"),
                        ("gpu", True): s.counter("gpu_writes")}
        self._lat = {"cpu": s.accumulator("cpu_read_latency"),
                     "gpu": s.accumulator("gpu_read_latency")}
        self.line_bytes = line_bytes

    # -- address mapping -------------------------------------------------

    def _strip_channel(self, addr: int) -> int:
        """Remove the channel-select bits from an address."""
        low = addr & ((1 << self._strip_shift) - 1)
        high = addr >> (self._strip_shift + self._chan_bits)
        return (high << self._strip_shift) | low

    def map_address(self, addr: int) -> tuple[int, int]:
        """(bank index, row) for an address routed to this channel."""
        a = self._strip_channel(addr) >> self._line_shift
        bank = (a >> self._col_bits) & self._bank_mask
        row = a >> (self._col_bits + self._bank_bits)
        if self.cfg.mapping == "bank-xor":
            bank = (bank ^ row) & self._bank_mask
        return bank, row

    # -- queueing -----------------------------------------------------------

    def enqueue(self, req: MemRequest) -> None:
        bank, row = self.map_address(req.addr)
        entry = PendingReq(req, row, bank, self.sim.now)
        b = self.banks[bank]
        b.queued += 1
        if entry.is_write:
            b.queued_w += 1
        else:
            b.queued_r += 1
        if req.span is not None:
            now = self.sim.now
            req.span.stamp("dram_enqueue", now)
            tr = self.tracer
            tr.gauge_record("dram_queue", now, self.queue_depth(),
                            ch=self.channel_id)
            tr.gauge_record("dram_bank_queue", now,
                            self.banks[bank].queued,
                            ch=self.channel_id, bank=bank)
        if req.is_write:
            self.write_q.append(entry)
        elif not self.scheduler.on_enqueue(entry):
            self.read_q.append(entry)
        self._kick(self.sim.now)

    def _pending_reads(self) -> int:
        n = len(self.read_q)
        if isinstance(self.scheduler, SmsScheduler):
            n += self.scheduler.pending_reads()
        return n

    def queue_depth(self) -> int:
        return self._pending_reads() + len(self.write_q)

    # -- issue loop -------------------------------------------------------

    def _kick(self, t: int) -> None:
        t = max(t, self.sim.now)
        if self._try_event is not None and not self._try_event.cancelled:
            if self._try_event.time <= t:
                return
            self._try_event.cancel()
        # closure-free: ``at_call`` with the plain function avoids a
        # bound-method allocation per (re)arm; profiling still keys it
        # as ``MemoryController._try_issue`` via ``__qualname__``
        self._try_event = self.sim.at_call(t, _TRY_ISSUE, self)

    def _apply_refreshes(self) -> None:
        """All-bank refresh, applied lazily at command-issue time.

        Commands only issue from :meth:`_try_issue`, so folding every
        tREFI boundary crossed since the last issue into the bank state
        here is timing-equivalent to eventing each refresh — and it
        keeps the event queue drainable (no perpetual refresh events).
        """
        t_refi = self.timing.t_refi
        if t_refi <= 0:
            return
        k = self.sim.now // t_refi
        while self._refresh_applied < k:
            self._refresh_applied += 1
            busy_until = self._refresh_applied * t_refi + self.timing.t_rfc
            for b in self.banks:
                b.ready_at = max(b.ready_at, busy_until)
                b.open_row = None
            self.refreshes += 1

    def _faw_blocked(self, entry: PendingReq) -> bool:
        """True if issuing this request's ACTIVATE would violate tFAW."""
        t_faw = self.timing.t_faw
        if t_faw <= 0:
            return False
        if self.banks[entry.bank].row_state(entry.row) == "hit":
            return False               # no ACTIVATE needed
        now = self.sim.now
        self._act_times = [t for t in self._act_times if now - t < t_faw]
        return len(self._act_times) >= 4

    def _issuable(self, q: list[PendingReq]) -> list[PendingReq]:
        now = self.sim.now
        return [e for e in q if self.banks[e.bank].ready_at <= now
                and not self._faw_blocked(e)]

    def _update_drain(self) -> None:
        if not self._draining:
            if len(self.write_q) >= self._drain_hi:
                self._draining = True
        elif len(self.write_q) <= self._drain_lo:
            self._draining = False

    def _try_issue(self) -> None:
        self._try_event = None
        self._apply_refreshes()
        self._update_drain()
        if self._fast:
            candidates, hint = self._batched_poll()
            if candidates is None:    # the common no-op poll, O(banks)
                if hint is not None:
                    now = self.sim.now
                    self._kick(hint if hint > now else now + 1)
                return
        else:
            candidates = []
            if self._draining:
                candidates.extend(self._issuable(self.write_q))
            candidates.extend(self._issuable(self.read_q))
            if not candidates and self.write_q \
                    and self._pending_reads() == 0:
                candidates.extend(self._issuable(self.write_q))

        sel = self.scheduler.select(self, candidates)
        if sel is None:
            hint = self._retry_hint()
            if hint is not None:
                self._kick(max(hint, self.sim.now + 1))
            return
        try:                           # single scan (was: `in` + remove)
            self.read_q.remove(sel)
        except ValueError:
            try:
                self.write_q.remove(sel)
            except ValueError:
                pass                   # SMS batch entries bypass read_q
        self._service(sel)
        self._kick(self.sim.now + DRAM_CYCLE_TICKS)

    def _batched_poll(self) -> tuple[Optional[list[PendingReq]],
                                     Optional[int]]:
        """One O(banks) pass answering both poll questions at once:
        ``(candidates, retry_hint)``.

        ``candidates`` is exactly the legacy candidate list, or ``None``
        when no eligible bank can accept a command at ``now`` — the
        per-bank ``queued_r``/``queued_w`` counters mirror queue
        membership, so "some ready bank holds eligible work" is
        equivalent to "the per-entry scan would find a candidate".  When
        ``candidates`` is ``None``, ``retry_hint`` is the min
        ``ready_at`` over every queued bank — the *same* value the
        legacy :meth:`_retry_hint` computes per-entry (and ``None`` when
        the queues are empty), so the caller re-arms at the identical
        tick and the poll cadence is byte-for-byte the legacy one.

        The hint is deliberately *not* sharpened to the next
        eligible-issue tick: with writes parked below the drain
        watermark the legacy hint is a ready write bank's past
        ``ready_at``, producing a ``now + 1`` re-poll every tick.  Those
        polls look like no-ops but their scheduled events occupy
        positions in the kernel's ``(time, seq)`` order, so the poll
        that eventually issues can run before or after a same-tick
        enqueue or completion depending on *when it was scheduled* —
        skipping the chain was tried and measurably diverged full-system
        runs.  Cheapening each poll is safe; moving it is not.

        Preconditions (``self._fast``): tFAW disabled (``_issuable``
        degenerates to the ready-bank filter) and a scheduler that
        absorbs nothing at enqueue.
        """
        now = self.sim.now
        banks = self.banks
        best = None
        if self._draining:
            for b in banks:
                if not b.queued:
                    continue
                r = b.ready_at
                if r <= now:      # any queued work is eligible in drain
                    out = [e for e in self.write_q
                           if banks[e.bank].ready_at <= now]
                    out += [e for e in self.read_q
                            if banks[e.bank].ready_at <= now]
                    return out, None
                if best is None or r < best:
                    best = r
            return None, best
        for b in banks:
            if not b.queued:
                continue
            r = b.ready_at
            if best is None or r < best:
                best = r
            if r <= now and b.queued_r:
                return [e for e in self.read_q
                        if banks[e.bank].ready_at <= now], None
        if self.write_q and not self.read_q and best is not None \
                and best <= now:
            out = [e for e in self.write_q
                   if banks[e.bank].ready_at <= now]
            if out:
                return out, None
        return None, best

    def _retry_hint(self) -> Optional[int]:
        if self.queue_depth() == 0:
            return None               # nothing to issue: go idle
        hints = []
        for q in (self.read_q, self.write_q):
            for e in q:
                hints.append(self.banks[e.bank].ready_at)
        if self.timing.t_faw > 0 and self._act_times:
            hints.append(self._act_times[0] + self.timing.t_faw)
        if isinstance(self.scheduler, SmsScheduler):
            cur = self.scheduler._current
            if cur is not None and cur.entries:
                hints.append(self.banks[cur.entries[0].bank].ready_at)
            age = self.scheduler.earliest_hint()
            if age is not None:
                hints.append(age)
            if self.scheduler.pending_reads() and not hints:
                hints.append(self.sim.now + 1)
        return min(hints) if hints else None

    def _service(self, entry: PendingReq) -> None:
        bank = self.banks[entry.bank]
        bank.queued -= 1
        if entry.is_write:
            bank.queued_w -= 1
        else:
            bank.queued_r -= 1
        now = max(self.sim.now, bank.ready_at)
        if self.timing.t_faw > 0 and bank.row_state(entry.row) != "hit":
            self._act_times.append(now)
        sp = entry.req.span
        if sp is not None:
            sp.stamp("dram_issue", now)
            if bank.row_state(entry.row) != "hit":
                sp.stamp("bank_act", now)
        _data_start, done = bank.service(
            entry.row, now, self.timing, is_write=entry.is_write,
            open_page=self.cfg.open_page, bus_free_at=self.bus_free_at)
        if sp is not None:
            sp.stamp("dram_data", _data_start)
            sp.stamp("dram_done", done)
        self.bus_free_at = done
        side = "gpu" if entry.is_gpu else "cpu"
        self._served[(side, entry.is_write)].inc()
        if not entry.is_write:
            self._lat[side].add(done - entry.arrival)
            self.sim.at_call(done, _COMPLETE, entry.req)
        elif entry.req.on_done is not None:
            self.sim.at_call(done, _COMPLETE, entry.req)

    # -- stats helpers ----------------------------------------------------

    def guard_state(self) -> dict:
        """Queue-accounting snapshot for the invariant monitor.

        ``bank_queued`` (the sum of the per-bank counters maintained at
        enqueue/service time) must equal ``reads + writes`` — a mismatch
        means a transaction was lost or double-serviced.  ``oldest_age``
        covers *reads* only (writes may legitimately sit below the drain
        watermark for a long time).  Read-only.
        """
        now = self.sim.now
        oldest = min((e.arrival for e in self.read_q), default=None)
        if isinstance(self.scheduler, SmsScheduler):
            sched = self.scheduler
            batches = list(sched._ready) + list(sched._forming.values())
            if sched._current is not None:
                batches.append(sched._current)
            for b in batches:
                for e in b.entries:
                    if oldest is None or e.arrival < oldest:
                        oldest = e.arrival
        return {"reads": self._pending_reads(),
                "writes": len(self.write_q),
                "bank_queued": sum(b.queued for b in self.banks),
                "oldest_age": None if oldest is None else now - oldest}

    def bytes_served(self, side: str, write: bool) -> int:
        return self._served[(side, write)].value * self.line_bytes

    def row_hit_rate(self) -> float:
        hits = sum(b.row_hits for b in self.banks)
        total = hits + sum(b.row_misses + b.row_conflicts
                           for b in self.banks)
        return hits / total if total else 0.0


#: unbound hot-path callback for closure-free ``_kick`` scheduling
#: (``at_call(t, _TRY_ISSUE, self)``) — no bound method per re-arm
_TRY_ISSUE = MemoryController._try_issue


class DramSystem:
    """All channels + line-interleaved channel routing."""

    def __init__(self, sim: Simulator, cfg: DramConfig,
                 scheduler_factory=None, *, line_bytes: int = LINE_BYTES):
        self.sim = sim
        self.cfg = cfg
        if cfg.channels & (cfg.channels - 1):
            raise ValueError("channel count must be a power of two")
        if cfg.mapping not in ("line", "row", "bank-xor"):
            raise ValueError(f"unknown DRAM mapping {cfg.mapping!r}")
        self._chan_mask = cfg.channels - 1
        self._line_shift = line_bytes.bit_length() - 1
        # channel-select bit position: line granularity (default and
        # bank-xor) or row granularity
        if cfg.mapping == "row":
            self._chan_select_shift = (cfg.row_bytes).bit_length() - 1
        else:
            self._chan_select_shift = self._line_shift
        factory = scheduler_factory or (lambda ch: FrFcfsScheduler())
        self.controllers = [
            MemoryController(sim, cfg, ch, factory(ch),
                             line_bytes=line_bytes)
            for ch in range(cfg.channels)
        ]

    def channel_of(self, addr: int) -> int:
        return (addr >> self._chan_select_shift) & self._chan_mask

    def send(self, req: MemRequest) -> None:
        self.controllers[self.channel_of(req.addr)].enqueue(req)

    # -- aggregated stats ----------------------------------------------------

    def bytes_served(self, side: str, write: bool) -> int:
        return sum(c.bytes_served(side, write) for c in self.controllers)

    def reads(self, side: str) -> int:
        return sum(c._served[(side, False)].value for c in self.controllers)

    def writes(self, side: str) -> int:
        return sum(c._served[(side, True)].value for c in self.controllers)

    def mean_read_latency(self, side: str) -> float:
        total = sum(c._lat[side].total for c in self.controllers)
        n = sum(c._lat[side].n for c in self.controllers)
        return total / n if n else 0.0

    def row_hit_rate(self) -> float:
        hits = sum(b.row_hits for c in self.controllers for b in c.banks)
        total = hits + sum(b.row_misses + b.row_conflicts
                           for c in self.controllers for b in c.banks)
        return hits / total if total else 0.0

    def snapshot(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for c in self.controllers:
            for k, v in c.stats.snapshot().items():
                out[k] = out.get(k, 0) + v
        return out

    def queue_depth(self) -> int:
        """Total pending transactions across all channels."""
        return sum(c.queue_depth() for c in self.controllers)

    def interval_state(self) -> dict[str, int]:
        """Cumulative per-side data bytes plus the instantaneous queue
        depth — the telemetry sampler differences consecutive snapshots
        into per-interval bandwidth shares.  Read-only."""
        return {"cpu_bytes": (self.bytes_served("cpu", False) +
                              self.bytes_served("cpu", True)),
                "gpu_bytes": (self.bytes_served("gpu", False) +
                              self.bytes_served("gpu", True)),
                "queue_depth": self.queue_depth()}
