"""Per-channel memory controller and the multi-channel DRAM system.

Each controller owns one DDR3 channel: per-bank row-buffer state, split
read/write queues with write-drain hysteresis, a shared data bus, and a
pluggable access scheduler (FR-FCFS by default).  Command issue is paced
at one command per DRAM cycle; bank-level parallelism emerges because a
bank only blocks its own next command while the data bus serialises the
actual transfers.
"""

from __future__ import annotations

from typing import Optional

from repro.config import DRAM_CYCLE_TICKS, DramConfig, LINE_BYTES
from repro.dram.bank import Bank
from repro.dram.schedulers import FrFcfsScheduler, SmsScheduler
from repro.dram.timing import TimingTicks
from repro.mem.request import MemRequest
from repro.sim.engine import Simulator
from repro.sim.stats import StatSet

#: closure-free completion: ``at_call(t, _COMPLETE, req)`` avoids
#: allocating a ``req.complete`` bound method per served transaction
_COMPLETE = MemRequest.complete


class PendingReq:
    """One queued DRAM transaction (line granularity)."""

    __slots__ = ("req", "row", "bank", "arrival", "is_write", "is_gpu",
                 "source")

    def __init__(self, req: MemRequest, row: int, bank: int, arrival: int):
        self.req = req
        self.row = row
        self.bank = bank
        self.arrival = arrival
        self.is_write = req.is_write
        self.is_gpu = req.is_gpu
        self.source = req.source


class MemoryController:
    def __init__(self, sim: Simulator, cfg: DramConfig, channel_id: int,
                 scheduler=None, *, line_bytes: int = LINE_BYTES,
                 channel_bits: Optional[int] = None):
        self.sim = sim
        self.cfg = cfg
        self.channel_id = channel_id
        self.timing = TimingTicks.from_timing(cfg.timing)
        nbanks = cfg.banks_per_rank * cfg.ranks_per_channel
        self.banks = [Bank(i) for i in range(nbanks)]
        self.scheduler = scheduler if scheduler is not None \
            else FrFcfsScheduler()
        if hasattr(self.scheduler, "now_fn"):
            self.scheduler.now_fn = lambda: self.sim.now
        self.read_q: list[PendingReq] = []
        self.write_q: list[PendingReq] = []
        self.bus_free_at = 0
        self._draining = False
        self._try_event = None
        #: rolling ACTIVATE timestamps for the tFAW constraint
        self._act_times: list[int] = []
        self.refreshes = 0
        self._refresh_applied = 0
        #: span tracer (None unless the system wires one); only touched
        #: when the entering request carries a sampled span
        self.tracer = None

        # address mapping (within the channel): row : bank : column : line.
        # The channel-select bits sit at line granularity ("line",
        # "bank-xor") or at row granularity ("row") and are stripped
        # before the bank/row decomposition.
        self._line_shift = line_bytes.bit_length() - 1
        if channel_bits is None:
            channel_bits = max(cfg.channels - 1, 0).bit_length()
        self._chan_bits = channel_bits
        self._strip_shift = (cfg.row_bytes.bit_length() - 1
                             if cfg.mapping == "row"
                             else self._line_shift)
        lines_per_row = cfg.row_bytes // line_bytes
        self._col_bits = lines_per_row.bit_length() - 1
        self._col_mask = lines_per_row - 1
        self._bank_bits = (nbanks - 1).bit_length() if nbanks > 1 else 0
        self._bank_mask = nbanks - 1

        self.stats = StatSet(f"mc{channel_id}")
        s = self.stats
        self._served = {("cpu", False): s.counter("cpu_reads"),
                        ("cpu", True): s.counter("cpu_writes"),
                        ("gpu", False): s.counter("gpu_reads"),
                        ("gpu", True): s.counter("gpu_writes")}
        self._lat = {"cpu": s.accumulator("cpu_read_latency"),
                     "gpu": s.accumulator("gpu_read_latency")}
        self.line_bytes = line_bytes

    # -- address mapping -------------------------------------------------

    def _strip_channel(self, addr: int) -> int:
        """Remove the channel-select bits from an address."""
        low = addr & ((1 << self._strip_shift) - 1)
        high = addr >> (self._strip_shift + self._chan_bits)
        return (high << self._strip_shift) | low

    def map_address(self, addr: int) -> tuple[int, int]:
        """(bank index, row) for an address routed to this channel."""
        a = self._strip_channel(addr) >> self._line_shift
        bank = (a >> self._col_bits) & self._bank_mask
        row = a >> (self._col_bits + self._bank_bits)
        if self.cfg.mapping == "bank-xor":
            bank = (bank ^ row) & self._bank_mask
        return bank, row

    # -- queueing -----------------------------------------------------------

    def enqueue(self, req: MemRequest) -> None:
        bank, row = self.map_address(req.addr)
        entry = PendingReq(req, row, bank, self.sim.now)
        self.banks[bank].queued += 1
        if req.span is not None:
            now = self.sim.now
            req.span.stamp("dram_enqueue", now)
            tr = self.tracer
            tr.gauge_record("dram_queue", now, self.queue_depth(),
                            ch=self.channel_id)
            tr.gauge_record("dram_bank_queue", now,
                            self.banks[bank].queued,
                            ch=self.channel_id, bank=bank)
        if req.is_write:
            self.write_q.append(entry)
        elif not self.scheduler.on_enqueue(entry):
            self.read_q.append(entry)
        self._kick(self.sim.now)

    def _pending_reads(self) -> int:
        n = len(self.read_q)
        if isinstance(self.scheduler, SmsScheduler):
            n += self.scheduler.pending_reads()
        return n

    def queue_depth(self) -> int:
        return self._pending_reads() + len(self.write_q)

    # -- issue loop -------------------------------------------------------

    def _kick(self, t: int) -> None:
        t = max(t, self.sim.now)
        if self._try_event is not None and not self._try_event.cancelled:
            if self._try_event.time <= t:
                return
            self._try_event.cancel()
        self._try_event = self.sim.at(t, self._try_issue)

    def _apply_refreshes(self) -> None:
        """All-bank refresh, applied lazily at command-issue time.

        Commands only issue from :meth:`_try_issue`, so folding every
        tREFI boundary crossed since the last issue into the bank state
        here is timing-equivalent to eventing each refresh — and it
        keeps the event queue drainable (no perpetual refresh events).
        """
        t_refi = self.timing.t_refi
        if t_refi <= 0:
            return
        k = self.sim.now // t_refi
        while self._refresh_applied < k:
            self._refresh_applied += 1
            busy_until = self._refresh_applied * t_refi + self.timing.t_rfc
            for b in self.banks:
                b.ready_at = max(b.ready_at, busy_until)
                b.open_row = None
            self.refreshes += 1

    def _faw_blocked(self, entry: PendingReq) -> bool:
        """True if issuing this request's ACTIVATE would violate tFAW."""
        t_faw = self.timing.t_faw
        if t_faw <= 0:
            return False
        if self.banks[entry.bank].row_state(entry.row) == "hit":
            return False               # no ACTIVATE needed
        now = self.sim.now
        self._act_times = [t for t in self._act_times if now - t < t_faw]
        return len(self._act_times) >= 4

    def _issuable(self, q: list[PendingReq]) -> list[PendingReq]:
        now = self.sim.now
        return [e for e in q if self.banks[e.bank].ready_at <= now
                and not self._faw_blocked(e)]

    def _update_drain(self) -> None:
        hi = int(self.cfg.write_queue * self.cfg.write_drain_hi)
        lo = int(self.cfg.write_queue * self.cfg.write_drain_lo)
        if not self._draining and len(self.write_q) >= hi:
            self._draining = True
        elif self._draining and len(self.write_q) <= lo:
            self._draining = False

    def _try_issue(self) -> None:
        self._try_event = None
        self._apply_refreshes()
        self._update_drain()
        candidates: list[PendingReq] = []
        if self._draining:
            candidates.extend(self._issuable(self.write_q))
        candidates.extend(self._issuable(self.read_q))
        if not candidates and self.write_q and self._pending_reads() == 0:
            candidates.extend(self._issuable(self.write_q))

        sel = self.scheduler.select(self, candidates)
        if sel is None:
            hint = self._retry_hint()
            if hint is not None:
                self._kick(max(hint, self.sim.now + 1))
            return
        if sel in self.read_q:
            self.read_q.remove(sel)
        elif sel in self.write_q:
            self.write_q.remove(sel)
        self._service(sel)
        self._kick(self.sim.now + DRAM_CYCLE_TICKS)

    def _retry_hint(self) -> Optional[int]:
        if self.queue_depth() == 0:
            return None               # nothing to issue: go idle
        hints = []
        for q in (self.read_q, self.write_q):
            for e in q:
                hints.append(self.banks[e.bank].ready_at)
        if self.timing.t_faw > 0 and self._act_times:
            hints.append(self._act_times[0] + self.timing.t_faw)
        if isinstance(self.scheduler, SmsScheduler):
            cur = self.scheduler._current
            if cur is not None and cur.entries:
                hints.append(self.banks[cur.entries[0].bank].ready_at)
            age = self.scheduler.earliest_hint()
            if age is not None:
                hints.append(age)
            if self.scheduler.pending_reads() and not hints:
                hints.append(self.sim.now + 1)
        return min(hints) if hints else None

    def _service(self, entry: PendingReq) -> None:
        bank = self.banks[entry.bank]
        bank.queued -= 1
        now = max(self.sim.now, bank.ready_at)
        if self.timing.t_faw > 0 and bank.row_state(entry.row) != "hit":
            self._act_times.append(now)
        sp = entry.req.span
        if sp is not None:
            sp.stamp("dram_issue", now)
            if bank.row_state(entry.row) != "hit":
                sp.stamp("bank_act", now)
        _data_start, done = bank.service(
            entry.row, now, self.timing, is_write=entry.is_write,
            open_page=self.cfg.open_page, bus_free_at=self.bus_free_at)
        if sp is not None:
            sp.stamp("dram_data", _data_start)
            sp.stamp("dram_done", done)
        self.bus_free_at = done
        side = "gpu" if entry.is_gpu else "cpu"
        self._served[(side, entry.is_write)].inc()
        if not entry.is_write:
            self._lat[side].add(done - entry.arrival)
            self.sim.at_call(done, _COMPLETE, entry.req)
        elif entry.req.on_done is not None:
            self.sim.at_call(done, _COMPLETE, entry.req)

    # -- stats helpers ----------------------------------------------------

    def guard_state(self) -> dict:
        """Queue-accounting snapshot for the invariant monitor.

        ``bank_queued`` (the sum of the per-bank counters maintained at
        enqueue/service time) must equal ``reads + writes`` — a mismatch
        means a transaction was lost or double-serviced.  ``oldest_age``
        covers *reads* only (writes may legitimately sit below the drain
        watermark for a long time).  Read-only.
        """
        now = self.sim.now
        oldest = min((e.arrival for e in self.read_q), default=None)
        if isinstance(self.scheduler, SmsScheduler):
            sched = self.scheduler
            batches = list(sched._ready) + list(sched._forming.values())
            if sched._current is not None:
                batches.append(sched._current)
            for b in batches:
                for e in b.entries:
                    if oldest is None or e.arrival < oldest:
                        oldest = e.arrival
        return {"reads": self._pending_reads(),
                "writes": len(self.write_q),
                "bank_queued": sum(b.queued for b in self.banks),
                "oldest_age": None if oldest is None else now - oldest}

    def bytes_served(self, side: str, write: bool) -> int:
        return self._served[(side, write)].value * self.line_bytes

    def row_hit_rate(self) -> float:
        hits = sum(b.row_hits for b in self.banks)
        total = hits + sum(b.row_misses + b.row_conflicts
                           for b in self.banks)
        return hits / total if total else 0.0


class DramSystem:
    """All channels + line-interleaved channel routing."""

    def __init__(self, sim: Simulator, cfg: DramConfig,
                 scheduler_factory=None, *, line_bytes: int = LINE_BYTES):
        self.sim = sim
        self.cfg = cfg
        if cfg.channels & (cfg.channels - 1):
            raise ValueError("channel count must be a power of two")
        if cfg.mapping not in ("line", "row", "bank-xor"):
            raise ValueError(f"unknown DRAM mapping {cfg.mapping!r}")
        self._chan_mask = cfg.channels - 1
        self._line_shift = line_bytes.bit_length() - 1
        # channel-select bit position: line granularity (default and
        # bank-xor) or row granularity
        if cfg.mapping == "row":
            self._chan_select_shift = (cfg.row_bytes).bit_length() - 1
        else:
            self._chan_select_shift = self._line_shift
        factory = scheduler_factory or (lambda ch: FrFcfsScheduler())
        self.controllers = [
            MemoryController(sim, cfg, ch, factory(ch),
                             line_bytes=line_bytes)
            for ch in range(cfg.channels)
        ]

    def channel_of(self, addr: int) -> int:
        return (addr >> self._chan_select_shift) & self._chan_mask

    def send(self, req: MemRequest) -> None:
        self.controllers[self.channel_of(req.addr)].enqueue(req)

    # -- aggregated stats ----------------------------------------------------

    def bytes_served(self, side: str, write: bool) -> int:
        return sum(c.bytes_served(side, write) for c in self.controllers)

    def reads(self, side: str) -> int:
        return sum(c._served[(side, False)].value for c in self.controllers)

    def writes(self, side: str) -> int:
        return sum(c._served[(side, True)].value for c in self.controllers)

    def mean_read_latency(self, side: str) -> float:
        total = sum(c._lat[side].total for c in self.controllers)
        n = sum(c._lat[side].n for c in self.controllers)
        return total / n if n else 0.0

    def row_hit_rate(self) -> float:
        hits = sum(b.row_hits for c in self.controllers for b in c.banks)
        total = hits + sum(b.row_misses + b.row_conflicts
                           for c in self.controllers for b in c.banks)
        return hits / total if total else 0.0

    def snapshot(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for c in self.controllers:
            for k, v in c.stats.snapshot().items():
                out[k] = out.get(k, 0) + v
        return out

    def queue_depth(self) -> int:
        """Total pending transactions across all channels."""
        return sum(c.queue_depth() for c in self.controllers)

    def interval_state(self) -> dict[str, int]:
        """Cumulative per-side data bytes plus the instantaneous queue
        depth — the telemetry sampler differences consecutive snapshots
        into per-interval bandwidth shares.  Read-only."""
        return {"cpu_bytes": (self.bytes_served("cpu", False) +
                              self.bytes_served("cpu", True)),
                "gpu_bytes": (self.bytes_served("gpu", False) +
                              self.bytes_served("gpu", True)),
                "queue_depth": self.queue_depth()}
