"""Heterogeneous workload mixes (Table III).

``M1``-``M14``: four SPEC CPU 2006 applications + one GPU application,
used on the 4-CPU + 1-GPU configuration of Section VI.
``W1``-``W14``: one SPEC application + one GPU application, used for the
motivation experiments of Section II (1 CPU + 1 GPU).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.spec import profile_for
from repro.gpu.workloads import HIGH_FPS_GAMES, workload_for


@dataclass(frozen=True)
class Mix:
    name: str
    gpu_app: str | None
    cpu_apps: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.gpu_app is not None:
            workload_for(self.gpu_app)      # validate
        for sid in self.cpu_apps:
            profile_for(sid)

    @property
    def n_cpus(self) -> int:
        return len(self.cpu_apps)

    def cpu_label(self) -> str:
        return ",".join(str(s) for s in self.cpu_apps)


_TABLE_III = [
    # (game, M-mix spec ids, W-mix spec id)
    ("3DMark06GT1",  (403, 450, 481, 482), 481),
    ("3DMark06GT2",  (403, 429, 434, 462), 471),
    ("3DMark06HDR1", (401, 437, 450, 470), 470),
    ("3DMark06HDR2", (401, 462, 470, 471), 482),
    ("COD2",         (401, 437, 450, 470), 470),
    ("Crysis",       (429, 433, 434, 482), 429),
    ("DOOM3",        (410, 433, 462, 471), 462),
    ("HL2",          (410, 429, 433, 434), 403),
    ("L4D",          (410, 433, 462, 471), 462),
    ("NFS",          (410, 429, 433, 471), 437),
    ("Quake4",       (401, 437, 450, 481), 410),
    ("COR",          (403, 437, 450, 481), 434),
    ("UT2004",       (401, 437, 462, 470), 450),
    ("UT3",          (403, 437, 450, 481), 434),
]

#: M1..M14 — the evaluation mixes (four CPU apps + one GPU app)
MIXES_M: dict[str, Mix] = {
    f"M{i+1}": Mix(f"M{i+1}", game, cpus)
    for i, (game, cpus, _w) in enumerate(_TABLE_III)
}

#: W1..W14 — the motivation mixes (one CPU app + one GPU app)
MIXES_W: dict[str, Mix] = {
    f"W{i+1}": Mix(f"W{i+1}", game, (w,))
    for i, (game, _cpus, w) in enumerate(_TABLE_III)
}

#: mixes whose GPU application exceeds the 40 FPS target (Fig. 9-12 set)
HIGH_FPS_MIXES = [name for name, m in MIXES_M.items()
                  if m.gpu_app in HIGH_FPS_GAMES]
#: mixes whose GPU application stays below target (Fig. 13-14 set)
LOW_FPS_MIXES = [name for name, m in MIXES_M.items()
                 if m.gpu_app not in HIGH_FPS_GAMES]


def mix(name: str) -> Mix:
    if name in MIXES_M:
        return MIXES_M[name]
    if name in MIXES_W:
        return MIXES_W[name]
    raise KeyError(f"unknown mix {name!r} (M1..M14, W1..W14)")
