"""The invariant monitor: conservation, occupancy, liveness watchdogs.

Checks run at a configurable cycle interval from inside the event loop
(one read-only event per interval) plus one cheap accounting hook on the
request-issue boundary.  Every check models a hardware-level conservation
law; the mapping is documented in ``docs/robustness.md``:

====================== ====================================================
check                  invariant
====================== ====================================================
request_conservation   issued - retired == requests in flight; a request
                       never retires twice and never vanishes
inflight_age           every issued request retires within a bounded time
                       (a dropped fill wedges its issuer forever)
mshr                   LLC MSHR occupancy <= capacity; no entry outlives
                       the age bound; input-queue waiters exist only
                       while the file is full
dram                   per-bank queued accounting matches the queues;
                       read-queue population <= LLC MSHR capacity (every
                       DRAM read is an LLC fill); no transaction ages out
gpu_occupancy          0 <= outstanding <= mshr_entries; an "mshr" stall
                       always holds a deferred access to retry
cpu_occupancy          per-core MLP / write-buffer / prefetcher bounds
frpu_phase             learning<->prediction transitions alternate;
                       prediction phase implies learned data exists
atu                    N_G >= 1, W_G >= 0 and step-aligned, token count
                       in [1, N_G]; an open gate implies tokens remain
event_queue            kernel bookkeeping is sane and the head is never
                       in the past
liveness               with work pending, *something* (instructions,
                       frames, retires, DRAM service) advances across
                       ``stall_checks`` consecutive intervals
deadlock               the event queue never drains while the system
                       still has unfinished work
====================== ====================================================

A failed check raises :class:`InvariantViolation` carrying a
:class:`DiagnosticDump`; the exception aborts the run loudly rather than
letting a corrupted simulation produce plausible-looking numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

#: default ticks between monitor checks (2k GPU cycles)
DEFAULT_INTERVAL = 8192
#: default bound on how long one request may stay in flight, in ticks.
#: The worst legitimate round trip (deep DRAM queues, gated GPU, queued
#: LLC MSHR) is a few tens of thousands of ticks at every preset; one
#: million ticks of silence means the request is gone.
DEFAULT_MAX_AGE = 1_000_000
#: consecutive zero-progress checks before the starvation watchdog trips
DEFAULT_STALL_CHECKS = 8


@dataclass
class DiagnosticDump:
    """Snapshot of the machine taken at the moment of a violation."""

    tick: int
    #: (next event tick, bucket length) or None when the queue is empty
    event_head: Optional[tuple[int, int]]
    kernel: dict[str, int]
    counters: dict[str, int]
    occupancies: dict[str, Any]
    #: up to ``KEEP_OLDEST`` oldest in-flight requests: (repr, age ticks)
    oldest_inflight: list[tuple[str, int]]
    control: dict[str, Any] = field(default_factory=dict)
    telemetry_tail: list[dict] = field(default_factory=list)

    KEEP_OLDEST = 5

    def format(self) -> str:
        lines = [f"tick {self.tick:,}"]
        if self.event_head is not None:
            t, n = self.event_head
            lines.append(f"event queue head: tick {t:,} ({n} event(s))")
        else:
            lines.append("event queue head: <empty>")
        lines.append("kernel: " + ", ".join(
            f"{k}={v}" for k, v in self.kernel.items()))
        lines.append("counters: " + ", ".join(
            f"{k}={v}" for k, v in self.counters.items()))
        for name, occ in self.occupancies.items():
            lines.append(f"{name}: {occ}")
        if self.control:
            lines.append("control: " + ", ".join(
                f"{k}={v}" for k, v in self.control.items()))
        if self.oldest_inflight:
            lines.append("oldest in-flight requests:")
            for rep, age in self.oldest_inflight:
                lines.append(f"  {rep}  (age {age:,} ticks)")
        if self.telemetry_tail:
            lines.append(f"last {len(self.telemetry_tail)} telemetry "
                         "records:")
            for rec in self.telemetry_tail:
                lines.append(f"  {rec}")
        return "\n".join(lines)


class InvariantViolation(RuntimeError):
    """A simulation invariant was broken; the run is not trustworthy."""

    def __init__(self, check: str, message: str,
                 dump: Optional[DiagnosticDump] = None):
        self.check = check
        self.message = message
        self.dump = dump
        text = f"[{check}] {message}"
        if dump is not None:
            text += "\n--- diagnostic dump ---\n" + dump.format()
        super().__init__(text)


@dataclass
class GuardReport:
    """What the monitor observed over a (completed) run."""

    checks_run: int
    issued: int
    retired: int
    issued_writes: int
    in_flight_at_end: int
    max_in_flight: int

    def format(self) -> str:
        return (f"guard: {self.checks_run} checks, "
                f"{self.issued:,} issued / {self.retired:,} retired "
                f"(+{self.issued_writes:,} fire-and-forget writes), "
                f"peak in-flight {self.max_in_flight}, "
                f"{self.in_flight_at_end} in flight at stop")


class InvariantMonitor:
    """Watchdog over one :class:`~repro.sim.system.HeterogeneousSystem`.

    Construct it, pass it as ``HeterogeneousSystem(..., monitor=...)``
    (or ``run_system(..., monitor=...)``), and run.  The system wires
    the issue-accounting hook and schedules the periodic check event;
    a system built without a monitor is untouched.
    """

    def __init__(self, interval_ticks: int = DEFAULT_INTERVAL,
                 max_inflight_age: int = DEFAULT_MAX_AGE,
                 stall_checks: int = DEFAULT_STALL_CHECKS,
                 telemetry_tail: int = 16):
        if interval_ticks < 1:
            raise ValueError("monitor interval must be >= 1 tick")
        if max_inflight_age < 1:
            raise ValueError("max_inflight_age must be >= 1 tick")
        if stall_checks < 1:
            raise ValueError("stall_checks must be >= 1")
        self.interval_ticks = int(interval_ticks)
        self.max_inflight_age = int(max_inflight_age)
        self.stall_checks = int(stall_checks)
        self.telemetry_tail = int(telemetry_tail)

        self.system = None
        self.sim = None
        self.issued = 0
        self.retired = 0
        self.issued_writes = 0
        self.checks_run = 0
        self.max_in_flight = 0
        #: id(req) -> (req, issued_tick) for every retiring request in
        #: flight between the send hook and its on_done callback
        self._live: dict[int, tuple[Any, int]] = {}
        self._stall_count = 0
        self._last_progress: Optional[tuple] = None
        self._phase_idx = 0

    # -- wiring (called by HeterogeneousSystem at construction) ----------

    def wrap_issue(self, send: Callable, sim) -> Callable:
        """Wrap a send hook with issue/retire conservation accounting.

        Only requests that carry a completion callback participate in
        conservation (reads and read-for-ownership stores); writebacks
        are fire-and-forget by design and are counted separately.
        """
        live = self._live

        def guarded_send(req, _send=send, _live=live, _sim=sim):
            done = req.on_done
            if done is not None and not req.is_write:
                self.issued += 1
                _live[id(req)] = (req, _sim.now)
                if len(_live) > self.max_in_flight:
                    self.max_in_flight = len(_live)
                req.on_done = self._make_retire(done)
            else:
                self.issued_writes += 1
            _send(req)

        return guarded_send

    def _make_retire(self, done: Callable) -> Callable:
        def retired(req, _done=done):
            if self._live.pop(id(req), None) is None:
                raise InvariantViolation(
                    "request_conservation",
                    f"request retired that was never issued (or retired "
                    f"twice): {req!r}", self.dump())
            self.retired += 1
            _done(req)

        return retired

    def bind(self, system) -> None:
        """Attach to a fully-constructed system and start checking."""
        self.system = system
        self.sim = system.sim
        self.sim.after(self.interval_ticks, self._check)

    # -- the periodic check ----------------------------------------------

    def _fail(self, check: str, message: str) -> None:
        raise InvariantViolation(check, message, self.dump())

    def _check(self) -> None:
        self.checks_run += 1
        system = self.system
        sim = self.sim

        self._check_kernel(sim)
        self._check_conservation()
        self._check_inflight_age(sim.now)
        self._check_mshr(system, sim.now)
        self._check_dram(system, sim.now)
        self._check_gpu(system)
        self._check_cpu(system)
        self._check_control(system)
        self._check_liveness(system)

        if system._stopped:
            return                     # run complete: stop rescheduling
        if sim.pending() == 0:
            self._fail("deadlock",
                       "event queue drained with unfinished work: "
                       f"{system._cores_remaining} core(s) unfinished, "
                       f"{len(self._live)} request(s) in flight")
        sim.after(self.interval_ticks, self._check)

    # -- individual invariants -------------------------------------------

    def _check_kernel(self, sim) -> None:
        live = getattr(sim, "_live", None)
        if live is None:
            return                     # non-calendar kernel: skip
        if live < 0 or sim._size < 0 or sim._cancelled < 0:
            self._fail("event_queue",
                       f"negative kernel bookkeeping: live={live} "
                       f"size={sim._size} cancelled={sim._cancelled}")
        if sim._size < live:
            self._fail("event_queue",
                       f"enqueued total {sim._size} < live {live}")
        head = sim.head()
        if head is not None and head[0] < sim.now:
            self._fail("event_queue",
                       f"queue head at tick {head[0]} is in the past "
                       f"(now {sim.now})")

    def _check_conservation(self) -> None:
        in_flight = self.issued - self.retired
        if in_flight != len(self._live):
            self._fail("request_conservation",
                       f"issued {self.issued} - retired {self.retired} "
                       f"= {in_flight}, but {len(self._live)} request(s) "
                       "tracked in flight")
        if in_flight < 0:
            self._fail("request_conservation",
                       f"more requests retired ({self.retired}) than "
                       f"issued ({self.issued})")

    def _check_inflight_age(self, now: int) -> None:
        limit = self.max_inflight_age
        for req, t0 in self._live.values():
            if now - t0 > limit:
                self._fail("inflight_age",
                           f"request in flight for {now - t0:,} ticks "
                           f"(limit {limit:,}), never retired: {req!r}")

    def _check_mshr(self, system, now: int) -> None:
        mshr = system.llc.mshr
        if len(mshr) > mshr.capacity:
            self._fail("mshr", f"LLC MSHR occupancy {len(mshr)} exceeds "
                               f"capacity {mshr.capacity}")
        if system.llc._wait and not mshr.full:
            self._fail("mshr", f"{len(system.llc._wait)} request(s) "
                               "queued behind the MSHR file while it has "
                               "free entries")
        oldest = mshr.oldest(now)
        if oldest is not None and oldest[1] > self.max_inflight_age:
            self._fail("mshr",
                       f"MSHR entry for line 0x{oldest[0]:x} outstanding "
                       f"for {oldest[1]:,} ticks — its fill never "
                       "returned")

    def _check_dram(self, system, now: int) -> None:
        cap = system.llc.mshr.capacity
        for mc in system.dram.controllers:
            state = mc.guard_state()
            if state["reads"] > cap:
                self._fail("dram",
                           f"mc{mc.channel_id} read queue holds "
                           f"{state['reads']} entries but only {cap} LLC "
                           "MSHR fills can exist")
            if state["bank_queued"] != state["reads"] + state["writes"]:
                self._fail("dram",
                           f"mc{mc.channel_id} per-bank accounting "
                           f"({state['bank_queued']}) disagrees with its "
                           f"queues ({state['reads']}r+"
                           f"{state['writes']}w)")
            age = state["oldest_age"]
            if age is not None and age > self.max_inflight_age:
                self._fail("dram",
                           f"mc{mc.channel_id} transaction queued for "
                           f"{age:,} ticks without service")

    def _check_gpu(self, system) -> None:
        gpu = system.gpu
        if gpu is None:
            return
        if not 0 <= gpu.outstanding <= gpu.cfg.mshr_entries:
            self._fail("gpu_occupancy",
                       f"GPU outstanding fills {gpu.outstanding} outside "
                       f"[0, {gpu.cfg.mshr_entries}]")
        if gpu._stall == "mshr" and gpu._pending_send is None:
            self._fail("gpu_occupancy",
                       "GPU stalled on MSHR backpressure with no "
                       "deferred access to retry")

    def _check_cpu(self, system) -> None:
        for core in system.cores:
            if not 0 <= core.outstanding <= core.mlp:
                self._fail("cpu_occupancy",
                           f"{core.name} outstanding loads "
                           f"{core.outstanding} outside [0, {core.mlp}]")
            if not 0 <= core.wb_used <= core.cfg.write_buffer + 1:
                self._fail("cpu_occupancy",
                           f"{core.name} write buffer {core.wb_used} "
                           f"outside [0, {core.cfg.write_buffer + 1}]")
            if core._pf_outstanding > core._pf_max_outstanding:
                self._fail("cpu_occupancy",
                           f"{core.name} prefetcher has "
                           f"{core._pf_outstanding} in flight (max "
                           f"{core._pf_max_outstanding})")

    def _qos(self):
        return getattr(self.system.policy, "qos", None)

    def _check_control(self, system) -> None:
        qos = self._qos()
        if qos is None:
            return
        frpu = qos.frpu
        # phase machinery belongs to the reference RTP extrapolator;
        # learned predictors behind the seam (rls, ewma-blend, ...)
        # have no phases to police
        if hasattr(frpu, "phase_transitions"):
            transitions = frpu.phase_transitions
            while self._phase_idx < len(transitions):
                i = self._phase_idx
                if i > 0 and transitions[i][1] is transitions[i - 1][1]:
                    self._fail("frpu_phase",
                               f"illegal self-transition to "
                               f"{transitions[i][1].value} at frame "
                               f"{transitions[i][0]} — learning and "
                               "prediction must alternate")
                self._phase_idx += 1
            from repro.core.frpu import Phase
            if frpu.phase is Phase.PREDICTION and frpu.learned is None:
                self._fail("frpu_phase",
                           "FRPU in prediction phase with no learned "
                           "frame")

        atu = qos.atu
        if atu.ng < 1:
            self._fail("atu", f"N_G = {atu.ng} < 1")
        if atu.wg_ticks < 0:
            self._fail("atu", f"W_G = {atu.wg_ticks} ticks is negative")
        if atu.wg_ticks % atu.wg_step:
            self._fail("atu",
                       f"W_G = {atu.wg_ticks} not aligned to the "
                       f"{atu.wg_step}-tick growth step")
        if not 1 <= atu._tokens <= atu.ng:
            self._fail("atu",
                       f"token count {atu._tokens} outside [1, {atu.ng}]")
        gate_open = system.gpu is not None and system.gpu.gate is atu
        if gate_open and atu.active and atu._tokens < 1:
            self._fail("atu", "gate open with no tokens remaining")

    def _progress_signature(self, system) -> tuple:
        return (self.retired,
                sum(c.instructions for c in system.cores),
                system.gpu.frames_completed if system.gpu else 0,
                sum(sum(c._served[k].value for k in c._served)
                    for c in system.dram.controllers))

    def _check_liveness(self, system) -> None:
        sig = self._progress_signature(system)
        if sig == self._last_progress and not system._stopped:
            self._stall_count += 1
            if self._stall_count >= self.stall_checks:
                self._fail("liveness",
                           f"no forward progress (instructions, frames, "
                           f"retires, DRAM service all frozen) for "
                           f"{self._stall_count} consecutive checks "
                           f"({self._stall_count * self.interval_ticks:,}"
                           " ticks) with work pending")
        else:
            self._stall_count = 0
            self._last_progress = sig

    # -- end-of-run verification (called by HeterogeneousSystem.run) -----

    def verify_final(self) -> None:
        """Post-run check: a drained queue must mean a finished system.

        A run that stopped via :meth:`Simulator.stop` may legitimately
        leave requests in flight (the stop cuts pending completions);
        a run that *drained* with work unfinished leaked something.
        """
        system = self.system
        if system is None or system._stopped:
            return
        if self.sim.pending() == 0 and (
                system._cores_remaining > 0 or
                (system.gpu is not None and not system.gpu.stopped)):
            self._fail("deadlock",
                       "run ended by event-queue drain with unfinished "
                       f"work: {system._cores_remaining} core(s) and "
                       f"{len(self._live)} request(s) left")

    # -- reporting ---------------------------------------------------------

    def report(self) -> GuardReport:
        return GuardReport(
            checks_run=self.checks_run, issued=self.issued,
            retired=self.retired, issued_writes=self.issued_writes,
            in_flight_at_end=len(self._live),
            max_in_flight=self.max_in_flight)

    def dump(self) -> DiagnosticDump:
        """Assemble the diagnostic snapshot attached to violations."""
        system = self.system
        sim = self.sim
        now = sim.now if sim is not None else 0
        kernel: dict[str, int] = {}
        head = None
        if sim is not None:
            head = sim.head() if hasattr(sim, "head") else None
            for attr in ("_live", "_size", "_cancelled", "_seq"):
                if hasattr(sim, attr):
                    kernel[attr.lstrip("_")] = getattr(sim, attr)
        counters = {"issued": self.issued, "retired": self.retired,
                    "issued_writes": self.issued_writes,
                    "in_flight": len(self._live),
                    "checks_run": self.checks_run}
        occupancies: dict[str, Any] = {}
        control: dict[str, Any] = {}
        tail: list[dict] = []
        if system is not None:
            occupancies["llc"] = system.llc.guard_state()
            for mc in system.dram.controllers:
                occupancies[f"mc{mc.channel_id}"] = mc.guard_state()
            if system.gpu is not None:
                occupancies["gpu"] = system.gpu.guard_state()
            for core in system.cores:
                occupancies[core.name] = core.guard_state()
            qos = self._qos()
            if qos is not None:
                phase = getattr(qos.frpu, "phase", None)
                control = {
                    "predictor": qos.frpu.name,
                    "frpu_phase": phase.value if phase is not None
                    else "n/a",
                    "frpu_learned": getattr(qos.frpu, "learned", None)
                    is not None,
                    "atu": repr(qos.atu),
                    "throttling": qos.throttling,
                }
            tel = system.telemetry
            if tel is not None and getattr(tel, "records", None):
                tail = list(tel.records[-self.telemetry_tail:])
        oldest = sorted(
            ((repr(req), now - t0) for req, t0 in self._live.values()),
            key=lambda x: -x[1])[:DiagnosticDump.KEEP_OLDEST]
        return DiagnosticDump(
            tick=now, event_head=head, kernel=kernel, counters=counters,
            occupancies=occupancies, oldest_inflight=oldest,
            control=control, telemetry_tail=tail)
