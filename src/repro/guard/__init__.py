"""Simulation guardrails: invariant watchdogs over a live system.

The :class:`InvariantMonitor` rides along a
:class:`~repro.sim.system.HeterogeneousSystem` and periodically checks
the conservation and liveness invariants a healthy simulation must
satisfy — every issued request eventually retires, occupancies never
exceed capacity, the control-plane state machines only take defined
edges, and the event queue keeps making forward progress.  On a
violation it raises a structured :class:`InvariantViolation` carrying a
:class:`DiagnosticDump` of the machine state (event-queue head,
per-component occupancies, the oldest in-flight requests, the last N
telemetry records).

Strictly zero-cost when off: a system built without a monitor takes the
exact same code paths it always did (the wiring happens at construction
time, like spans/telemetry), and a system built *with* a monitor is
bit-identical to one without — the checks are read-only and never
perturb event order (``tests/guard/test_guard_golden.py``).

See ``docs/robustness.md`` for the invariant glossary mapping each
check onto the hardware structure it models.
"""

from repro.guard.monitor import (DiagnosticDump, GuardReport,
                                 InvariantMonitor, InvariantViolation)

__all__ = ["DiagnosticDump", "GuardReport", "InvariantMonitor",
           "InvariantViolation"]
