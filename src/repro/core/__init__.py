"""The paper's contribution: frame-rate prediction + GPU access throttling.

* :mod:`repro.core.rtp_table` — the 64-entry RTP information table
* :mod:`repro.core.frpu` — dynamic frame-rate estimation (Section III-A)
* :mod:`repro.core.atu` — the (N_G, W_G) throttle of Fig. 6 (III-B)
* :mod:`repro.core.qos` — the controller wiring FRPU -> ATU -> DRAM
  priority (Section III-C)
"""

from repro.core.rtp_table import RtpInfoTable, RtpEntry
from repro.core.frpu import FrameRatePredictor, Phase, LearnedFrame
from repro.core.atu import AccessThrottlingUnit
from repro.core.qos import QoSController

__all__ = ["RtpInfoTable", "RtpEntry", "FrameRatePredictor", "Phase",
           "LearnedFrame", "AccessThrottlingUnit", "QoSController"]
