"""The 64-entry render-target-plane information table (Section III-A1).

Per valid entry, four 4-byte fields about one RTP of the learned frame:

1. total number of updates to the RTP,
2. cycles to finish the RTP,
3. number of RTTs in the RTP,
4. shared-LLC accesses made for the RTP.

If a frame has more RTPs than entries, the last entry accumulates all
overflow RTPs (as the paper specifies).  Section III-D's storage claim
("just over a kilobyte") is checked by :meth:`storage_bits`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class RtpEntry:
    valid: bool = False
    updates: int = 0
    cycles: int = 0
    n_rtts: int = 0
    llc_accesses: int = 0

    def accumulate(self, updates: int, cycles: int, n_rtts: int,
                   llc: int) -> None:
        self.valid = True
        self.updates += updates
        self.cycles += cycles
        self.n_rtts += n_rtts
        self.llc_accesses += llc


class RtpInfoTable:
    FIELD_BYTES = 4
    FIELDS = 4

    def __init__(self, entries: int = 64):
        if entries < 1:
            raise ValueError("RTP table needs at least one entry")
        self.capacity = entries
        self._entries = [RtpEntry() for _ in range(entries)]
        self._n_rtps = 0              # RTPs recorded (may exceed capacity)

    def reset(self) -> None:
        for e in self._entries:
            e.valid = False
            e.updates = e.cycles = e.n_rtts = e.llc_accesses = 0
        self._n_rtps = 0

    def record(self, updates: int, cycles: int, n_rtts: int,
               llc: int) -> None:
        """Record one completed RTP; overflow folds into the last entry."""
        idx = min(self._n_rtps, self.capacity - 1)
        entry = self._entries[idx]
        if self._n_rtps < self.capacity:
            entry.valid = True
            entry.updates = updates
            entry.cycles = cycles
            entry.n_rtts = n_rtts
            entry.llc_accesses = llc
        else:
            entry.accumulate(updates, cycles, n_rtts, llc)
        self._n_rtps += 1

    @property
    def n_rtps(self) -> int:
        return self._n_rtps

    def valid_entries(self) -> list[RtpEntry]:
        return [e for e in self._entries if e.valid]

    def total_cycles(self) -> int:
        return sum(e.cycles for e in self.valid_entries())

    def total_llc_accesses(self) -> int:
        return sum(e.llc_accesses for e in self.valid_entries())

    def avg_cycles_per_rtp(self) -> float:
        n = self._n_rtps
        return self.total_cycles() / n if n else 0.0

    def storage_bits(self) -> int:
        """Hardware cost: 4 fields x 4 B per entry + 1 valid bit."""
        return self.capacity * (self.FIELDS * self.FIELD_BYTES * 8 + 1)
