"""Dynamic frame-rate estimation (Section III-A, Eqs. 1-3, Fig. 4).

The FRPU's estimator now lives behind the pluggable ``Predictor``
interface in :mod:`repro.predict`; the paper's Eqs. 1-3 extrapolator is
:class:`repro.predict.rtp.RtpExtrapolator`, the reference
implementation and the default (``SystemConfig.qos.predictor ==
"rtp"``).  This module keeps the historical import path alive —
``FrameRatePredictor`` *is* the reference extrapolator — for every
caller that predates the seam (tests, examples, the guard monitor's
phase checks).

See docs/predictors.md for the interface contract, the learned
alternatives (``rls``, ``ewma-blend``, ``last-frame``) and the
head-to-head evaluation suite (``python -m repro compare-predictors``).
"""

from __future__ import annotations

from repro.predict.rtp import (LearnedFrame, Phase, PredictionSample,
                               RtpExtrapolator)

#: the paper's FRPU estimator, under its original name
FrameRatePredictor = RtpExtrapolator

__all__ = ["FrameRatePredictor", "RtpExtrapolator", "Phase",
           "LearnedFrame", "PredictionSample"]
