"""Dynamic frame-rate estimation (Section III-A, Eqs. 1-3, Fig. 4).

The predictor alternates between a *learning* phase — one complete frame
is monitored and its per-RTP statistics recorded in the RTP information
table — and a *prediction* phase, where the current frame's projected
cycle count is

    F = (lambda * C_inter + (1 - lambda) * C_avg) * N_rtp        (Eq. 3)

with ``lambda`` the fraction of the frame rendered so far, ``C_inter``
the average cycles/RTP observed in the current frame, and ``C_avg`` /
``N_rtp`` from the learned frame.  Each completed frame in the
prediction phase is cross-verified against the learned data; drifting
more than ``verify_threshold`` discards the learning (back to point B of
Fig. 4).

Verification uses the *work* metrics (RTP count, updates, RTT counts,
LLC accesses) rather than cycles: cycle counts legitimately move with
memory-system contention and with our own throttling, while a change in
the rendered workload shows up in the work metrics.

Throttle correction: while the ATU gates accesses, observed cycles
include the injected stall.  The predictor subtracts the pipeline's
accounted throttle stall from ``C_inter`` to obtain the *natural* frame
time, so the throttle computation ``W_G = (C_T - C_P)/A`` stays stable
instead of oscillating (set ``correct_throttle=False`` to get the raw
paper-literal behaviour; the ablation bench compares both).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.core.rtp_table import RtpInfoTable
from repro.gpu.pipeline import FrameRecord, GpuPipeline


class Phase(enum.Enum):
    LEARNING = "learning"
    PREDICTION = "prediction"


@dataclass
class LearnedFrame:
    """Aggregates the FRPU derives from the RTP table after learning."""

    n_rtp: int
    c_avg: float                  # average GPU cycles per RTP
    llc_accesses: int             # A: LLC accesses per frame
    updates_per_rtp: float
    rtts_per_rtp: float
    llc_per_rtp: float


@dataclass
class PredictionSample:
    frame_index: int
    lam: float
    predicted_cycles: float


class FrameRatePredictor:
    #: outstanding mid-frame predictions kept at most; older entries
    #: belong to frames that will never reach ``on_frame_complete``
    #: (run ended mid-frame, learning reset) and would otherwise leak
    MID_FRAME_BOUND = 4

    def __init__(self, rtp_entries: int = 64, verify_threshold: float = 0.25,
                 correct_throttle: bool = True, skip_frames: int = 1,
                 ewma_alpha: float = 0.4, telemetry=None):
        from repro.config import ConfigError
        if rtp_entries < 1:
            raise ConfigError(
                f"frpu.rtp_entries must be >= 1, got {rtp_entries!r}")
        if not 0.0 < verify_threshold <= 1.0:
            raise ConfigError("frpu.verify_threshold must be in (0, 1], "
                              f"got {verify_threshold!r}")
        if skip_frames < 0:
            raise ConfigError(
                f"frpu.skip_frames must be >= 0, got {skip_frames!r}")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ConfigError("frpu.ewma_alpha must be in (0, 1], "
                              f"got {ewma_alpha!r}")
        self.table = RtpInfoTable(rtp_entries)
        #: optional repro.telemetry.Telemetry: phase transitions and
        #: prediction-error samples are emitted when attached
        self.telemetry = telemetry
        self.verify_threshold = verify_threshold
        self.correct_throttle = correct_throttle
        #: initial frames ignored entirely (cold caches would poison the
        #: learned cycles/RTP and bias every later prediction upwards)
        self.skip_frames = skip_frames
        #: after each verified frame the learned aggregates track the
        #: observed workload with this EWMA weight, so slow drift in
        #: contention does not require a full re-learning round trip
        self.ewma_alpha = ewma_alpha
        self.phase = Phase.LEARNING
        self.learned: Optional[LearnedFrame] = None
        self.phase_transitions: list[tuple[int, Phase]] = []
        #: per-frame (predicted, actual) cycles for the Fig. 8 error metric
        self.error_log: list[tuple[int, float, float]] = []
        self._mid_frame_prediction: dict[int, float] = {}
        self.frames_learned = 0
        self.frames_predicted = 0

    # -- prediction (Eqs. 1-3) -----------------------------------------------

    def predict_frame_cycles(self, pipeline: GpuPipeline) -> Optional[float]:
        """Projected cycles for the frame currently being rendered."""
        if self.phase is not Phase.PREDICTION or self.learned is None:
            return None
        lam = pipeline.frame_progress
        c_avg = self.learned.c_avg
        records = pipeline.current_rtp_records()
        if records:
            cycles = sum(r.cycles for r in records)
            if self.correct_throttle:
                cycles -= sum(r.throttle_ticks for r in records)
            c_inter = max(cycles / len(records), 1.0)
        else:
            # no RTP finished yet in this frame: extrapolate from elapsed
            elapsed = pipeline.current_frame_elapsed_cycles()
            if self.correct_throttle:
                elapsed -= pipeline.current_frame_throttle_cycles()
            frac = lam * self.learned.n_rtp
            c_inter = (elapsed / frac) if frac > 0.05 else c_avg
        c_rtp = lam * c_inter + (1.0 - lam) * c_avg
        f = c_rtp * self.learned.n_rtp
        # keep the latest mid-frame prediction for error accounting
        if 0.25 <= lam <= 0.75:
            self._note_mid_frame(pipeline._frame_idx, f)
        return f

    def _note_mid_frame(self, frame_idx: int, predicted: float) -> None:
        mid = self._mid_frame_prediction
        mid[frame_idx] = predicted
        while len(mid) > self.MID_FRAME_BOUND:
            del mid[min(mid)]

    def predicted_fps(self, pipeline: GpuPipeline, fps_nominal: float,
                      gpu_frame_cycles: int) -> Optional[float]:
        f = self.predict_frame_cycles(pipeline)
        if f is None or f <= 0:
            return None
        return fps_nominal * gpu_frame_cycles / f

    # -- frame completion: learn or verify -------------------------------------

    def on_frame_complete(self, rec: FrameRecord) -> None:
        if rec.index < self.skip_frames:
            return                     # cold-start frame: ignore
        if self.phase is Phase.LEARNING:
            self._learn(rec)
            return
        self.frames_predicted += 1
        self._log_error(rec)
        if not self._verify(rec):
            self.table.reset()
            self.learned = None
            self._mid_frame_prediction.clear()
            self.phase = Phase.LEARNING
            self.phase_transitions.append((rec.index, Phase.LEARNING))
            if self.telemetry is not None:
                self.telemetry.emit(
                    "frpu_phase", tick=rec.end_time, frame=rec.index,
                    phase=Phase.LEARNING.value,
                    actual_cycles=rec.cycles)
        else:
            self._refresh(rec)

    def _refresh(self, rec: FrameRecord) -> None:
        """EWMA-track the learned aggregates with a verified frame."""
        a = self.ewma_alpha
        learned = self.learned
        n = max(len(rec.rtps), 1)
        cycles = rec.cycles - (rec.throttle_ticks
                               if self.correct_throttle else 0)
        llc = sum(r.llc_accesses for r in rec.rtps)
        learned.c_avg = (1 - a) * learned.c_avg + a * (cycles / n)
        learned.llc_accesses = int((1 - a) * learned.llc_accesses + a * llc)
        learned.updates_per_rtp = ((1 - a) * learned.updates_per_rtp +
                                   a * sum(r.updates for r in rec.rtps) / n)
        learned.rtts_per_rtp = ((1 - a) * learned.rtts_per_rtp +
                                a * sum(r.n_rtts for r in rec.rtps) / n)
        learned.llc_per_rtp = (1 - a) * learned.llc_per_rtp + a * llc / n

    def _learn(self, rec: FrameRecord) -> None:
        self.table.reset()
        for r in rec.rtps:
            self.table.record(r.updates, r.cycles - (
                r.throttle_ticks if self.correct_throttle else 0),
                r.n_rtts, r.llc_accesses)
        n = self.table.n_rtps
        if n == 0:
            return                     # empty frame: stay learning
        entries = self.table.valid_entries()
        self.learned = LearnedFrame(
            n_rtp=n,
            c_avg=self.table.avg_cycles_per_rtp(),
            llc_accesses=self.table.total_llc_accesses(),
            updates_per_rtp=sum(e.updates for e in entries) / n,
            rtts_per_rtp=sum(e.n_rtts for e in entries) / n,
            llc_per_rtp=sum(e.llc_accesses for e in entries) / n,
        )
        self.frames_learned += 1
        self.phase = Phase.PREDICTION
        self.phase_transitions.append((rec.index, Phase.PREDICTION))
        if self.telemetry is not None:
            self.telemetry.emit(
                "frpu_phase", tick=rec.end_time, frame=rec.index,
                phase=Phase.PREDICTION.value, n_rtp=self.learned.n_rtp,
                c_avg=self.learned.c_avg, actual_cycles=rec.cycles)

    def _verify(self, rec: FrameRecord) -> bool:
        """Cross-verification: does this frame still match the learning?"""
        learned = self.learned
        if learned is None:
            return False
        if not rec.rtps:
            return False
        thr = self.verify_threshold

        def drift(observed: float, expected: float) -> float:
            if expected <= 0:
                return 0.0 if observed <= 0 else 1.0
            return abs(observed - expected) / expected

        n_rtp_obs = len(rec.rtps)
        if drift(n_rtp_obs, learned.n_rtp) > thr:
            return False
        upd = sum(r.updates for r in rec.rtps) / n_rtp_obs
        rtts = sum(r.n_rtts for r in rec.rtps) / n_rtp_obs
        llc = sum(r.llc_accesses for r in rec.rtps) / n_rtp_obs
        return (drift(upd, learned.updates_per_rtp) <= thr and
                drift(rtts, learned.rtts_per_rtp) <= thr and
                drift(llc, learned.llc_per_rtp) <= thr)

    def _log_error(self, rec: FrameRecord) -> None:
        mid = self._mid_frame_prediction
        for idx in [i for i in mid if i < rec.index]:
            del mid[idx]              # stale: that frame never completed
        pred = mid.pop(rec.index, None)
        if pred is None:
            return
        actual = rec.cycles - (rec.throttle_ticks
                               if self.correct_throttle else 0)
        if actual > 0:
            self.error_log.append((rec.index, pred, float(actual)))
            if self.telemetry is not None:
                self.telemetry.emit(
                    "frpu_error", tick=rec.end_time, frame=rec.index,
                    predicted_cycles=pred, actual_cycles=float(actual),
                    error_pct=100.0 * (pred - actual) / actual)

    # -- Fig. 8 metric --------------------------------------------------------------

    def percent_errors(self) -> list[float]:
        return [100.0 * (p - a) / a for _, p, a in self.error_log]

    def mean_abs_percent_error(self) -> float:
        errs = self.percent_errors()
        return sum(abs(e) for e in errs) / len(errs) if errs else 0.0
