"""The access throttling unit (Section III-B, Fig. 6).

The ATU holds two registers:

* ``N_G`` — accesses the GPU may issue before the GTT ports are gated,
* ``W_G`` — how long the ports stay disabled once ``N_G`` reaches 0.

The Fig. 6 computation, run at every recompute interval with the
predicted cycles/frame ``C_P``, the target cycles/frame ``C_T`` and the
per-frame LLC access count ``A``:

* ``C_P > C_T`` (GPU slower than target) -> ``N_G = 1, W_G = 0``
  (no throttling);
* else ``N_G = 1`` and ``W_G`` grows in steps until it covers
  ``(C_T - C_P) / A`` — the per-access stall that stretches the frame
  from ``C_P`` towards ``C_T``.

Two implementation choices (documented deviations, both benchmarked by
the ablation benches):

* ``W_G`` is kept at *tick* granularity (1/4 GPU cycle) because at our
  scaled frame sizes a one-GPU-cycle quantum is a ~25% FPS step;
  the growth step is still 2 units, as in Fig. 6.
* the loop result is quantised *downwards* (largest multiple of the
  step that does not exceed the Fig. 6 bound), so the delivered frame
  rate settles just *above* the QoS target rather than just below it —
  the conservative side of the paper's 10 FPS cushion.

The gate is *additive*: after each granted access the ports close for
``W_G``, so every GPU LLC access pays the full stall and the frame
stretches by ``A * W_G`` exactly as the Fig. 6 arithmetic assumes.
Gated requests pile up in GPU-internal buffers; that backpressure is
modelled by the pipeline's MSHR limit.
"""

from __future__ import annotations

from repro.config import GPU_CYCLE_TICKS


class AccessThrottlingUnit:
    def __init__(self, wg_step: int = 2, gpu_cycle_ticks: int =
                 GPU_CYCLE_TICKS):
        if wg_step < 1:
            raise ValueError("wg_step must be >= 1 tick")
        self.wg_step = wg_step            # in ticks
        self.gpu_cycle_ticks = gpu_cycle_ticks
        self.ng = 1
        self.wg_ticks = 0
        self._tokens = self.ng
        self._gate_until = 0
        self.recomputes = 0
        self.throttled_recomputes = 0
        #: inputs of the most recent :meth:`compute` — ``(C_P, C_T, A)``
        #: — kept for observability (telemetry emitters, debugging);
        #: None until the first recompute
        self.last_inputs: tuple[float, float, float] | None = None

    # -- Fig. 6 ----------------------------------------------------------------

    @property
    def wg(self) -> float:
        """W_G in GPU cycles (the paper's unit), for reporting."""
        return self.wg_ticks / self.gpu_cycle_ticks

    def compute(self, c_p: float, c_t: float,
                a: float) -> tuple[int, float]:
        """Run the Fig. 6 flow; returns the new ``(N_G, W_G cycles)``."""
        self.recomputes += 1
        self.last_inputs = (c_p, c_t, a)
        self.ng = 1
        if c_p > c_t or a <= 0:
            self.wg_ticks = 0
            return self.ng, self.wg
        target_ticks = (c_t - c_p) / a * self.gpu_cycle_ticks
        # the Fig. 6 growth loop, closed-form: largest multiple of the
        # step at or below the bound
        self.wg_ticks = int(target_ticks // self.wg_step) * self.wg_step
        if self.wg_ticks > 0:
            self.throttled_recomputes += 1
        return self.ng, self.wg

    def reset_gate(self) -> None:
        self.wg_ticks = 0
        self._tokens = self.ng
        self._gate_until = 0

    # -- the port gate ----------------------------------------------------------

    @property
    def active(self) -> bool:
        return self.wg_ticks > 0

    def next_issue_time(self, t: int, kind: str = "") -> int:
        """Earliest tick at which the next GPU LLC access may issue.

        The ATU gates the *collective* GPU LLC access rate — ``kind`` is
        ignored (unlike shader-core-centric schemes such as CM-BAL).
        """
        if self.wg_ticks <= 0:
            return t
        self._tokens -= 1
        if self._tokens > 0:
            return t                   # within the N_G burst allowance
        self._tokens = self.ng
        # Ports disabled for W_G once the burst allowance is used.  A
        # real GPU always has further requests queued behind the port
        # (deep request buffers), so every access pays the full W_G and
        # the frame stretches by A*W_G — the Fig. 6 operating regime.
        return t + self.wg_ticks

    def __repr__(self) -> str:
        return (f"ATU(N_G={self.ng}, W_G={self.wg:.2f}cyc, "
                f"active={self.active})")
