"""The QoS controller: FRPU -> ATU -> DRAM CPU-priority (Section III).

Every ``recompute_interval_gpu_cycles`` the controller:

1. asks the FRPU for the projected cycles/frame ``C_P`` (Eq. 3);
2. compares against ``C_T``, the cycles/frame at the target QoS rate
   (40 FPS: the 30 FPS visual-satisfaction floor plus a 10 FPS cushion);
3. if the GPU is faster than the target (``C_P < C_T``), computes the
   throttle ``(N_G, W_G)`` via the Fig. 6 flow, installs the gate on the
   GPU's GTT ports, and (optionally) boosts CPU priority in the DRAM
   access schedulers;
4. otherwise removes the gate and the priority boost — the mix runs in
   baseline mode (the proposal "remains disabled" for GPU applications
   that fail to meet the target FPS).

``C_T`` in scaled cycles: a design-point frame is ``gpu_frame_cycles``
GPU cycles and corresponds to ``fps_nominal``; rendering at ``target_fps``
therefore takes ``gpu_frame_cycles * fps_nominal / target_fps`` cycles.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.config import GPU_CYCLE_TICKS, QosConfig
from repro.core.atu import AccessThrottlingUnit
from repro.dram.schedulers import CpuPriorityScheduler
from repro.gpu.pipeline import FrameRecord, GpuPipeline, PassGate
from repro.predict import Predictor, make_predictor
from repro.sim.engine import Simulator
from repro.sim.stats import StatSet


class QoSController:
    def __init__(self, sim: Simulator, cfg: QosConfig,
                 pipeline: GpuPipeline, gpu_frame_cycles: int,
                 dram_schedulers: Sequence[CpuPriorityScheduler] = (),
                 correct_throttle: bool = True, seed: int = 0,
                 telemetry=None):
        self.sim = sim
        self.cfg = cfg
        self.pipeline = pipeline
        self.gpu_frame_cycles = gpu_frame_cycles
        self.dram_schedulers = list(dram_schedulers)
        #: optional repro.telemetry.Telemetry (shared with the FRPU):
        #: ATU updates, gate edges and DRAM priority flips are emitted
        self.telemetry = telemetry
        #: the frame-time predictor behind the FRPU seam
        #: (cfg.predictor selects the implementation; "rtp" is the
        #: paper's Eqs. 1-3 extrapolator).  The attribute keeps its
        #: historical name — metrics, guard and fault injectors all
        #: reach the predictor as ``qos.frpu``.
        self.frpu: Predictor = make_predictor(
            cfg.predictor,
            rtp_entries=cfg.rtp_table_entries,
            verify_threshold=cfg.verify_threshold,
            correct_throttle=correct_throttle, seed=seed,
            telemetry=telemetry)
        self.atu = AccessThrottlingUnit(wg_step=cfg.wg_step)
        self._pass_gate = PassGate()
        self.throttling = False
        self._interval_ticks = (cfg.recompute_interval_gpu_cycles *
                                GPU_CYCLE_TICKS)
        self.stats = StatSet("qos")
        self._c_recompute = self.stats.counter("recomputes")
        self._c_throttle_on = self.stats.counter("throttle_activations")
        self._c_throttle_off = self.stats.counter("throttle_deactivations")
        self._stopped = False

    # -- target ---------------------------------------------------------------

    @property
    def target_cycles_per_frame(self) -> float:
        w = self.pipeline.workload
        return self.gpu_frame_cycles * w.fps_nominal / self.cfg.target_fps

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        self.pipeline.on_frame_done = self._chain_frame_done(
            self.pipeline.on_frame_done)
        self.sim.after(self._interval_ticks, self._tick)

    def stop(self) -> None:
        self._stopped = True
        self._disable()

    def _chain_frame_done(self, prev):
        def handler(rec: FrameRecord) -> None:
            self.frpu.on_frame_complete(rec)
            if not self.frpu.ready:
                # no valid estimate: run unthrottled (paper: steps 2-3
                # are only invoked with a valid estimate)
                self._disable()
            if prev is not None:
                prev(rec)
        return handler

    def _tick(self) -> None:
        if self._stopped or self.pipeline.stopped:
            return
        self.recompute()
        self.sim.after(self._interval_ticks, self._tick)

    # -- the three-step algorithm ---------------------------------------------

    def recompute(self) -> None:
        self._c_recompute.inc()
        c_p = self.frpu.predict_frame_cycles(self.pipeline)
        if c_p is None:
            self._disable()
            return
        c_t = self.target_cycles_per_frame
        a = self.frpu.frame_llc_accesses()
        if c_p >= c_t or a <= 0:
            # estimated frame rate below target: steps 2 and 3 are
            # not invoked
            self.atu.compute(c_p, c_t, max(a, 1))
            self._emit_atu(c_p, c_t, a, active=False)
            self._disable()
            return
        self.atu.compute(c_p, c_t, a)
        self._emit_atu(c_p, c_t, a, active=True)
        self._enable()

    def _emit_atu(self, c_p: float, c_t: float, a: int,
                  active: bool) -> None:
        if self.telemetry is not None:
            self.telemetry.emit(
                "atu_update", tick=self.sim.now, ng=self.atu.ng,
                wg_cycles=self.atu.wg, c_p=c_p, c_t=c_t, a=int(a),
                active=int(active))

    def _enable(self) -> None:
        if not self.throttling:
            self.throttling = True
            self._c_throttle_on.inc()
            if self.telemetry is not None:
                self.telemetry.emit("gate", tick=self.sim.now,
                                    state="open", wg_cycles=self.atu.wg)
                if self.cfg.cpu_priority_boost and self.dram_schedulers:
                    self.telemetry.emit("dram_priority", tick=self.sim.now,
                                        mode="cpu_boost", source="qos")
        self.pipeline.gate = self.atu
        if self.cfg.cpu_priority_boost:
            for s in self.dram_schedulers:
                s.boost = True

    def _disable(self) -> None:
        if self.throttling:
            self.throttling = False
            self._c_throttle_off.inc()
            if self.telemetry is not None:
                self.telemetry.emit("gate", tick=self.sim.now,
                                    state="closed", wg_cycles=0.0)
                if self.cfg.cpu_priority_boost and self.dram_schedulers:
                    self.telemetry.emit("dram_priority", tick=self.sim.now,
                                        mode="normal", source="qos")
        self.atu.reset_gate()
        self.pipeline.gate = self._pass_gate
        for s in self.dram_schedulers:
            s.boost = False

    # -- reporting ------------------------------------------------------------

    def predicted_fps(self) -> Optional[float]:
        return self.frpu.predicted_fps(
            self.pipeline, self.pipeline.workload.fps_nominal,
            self.gpu_frame_cycles)

    def storage_overhead_bits(self) -> int:
        """Section III-D: the hardware budget of the whole mechanism —
        the predictor state (for the reference extrapolator: the RTP
        information table plus the ATU/FRPU working registers, "just
        over a kilobyte of additional storage")."""
        return self.frpu.storage_bits()
