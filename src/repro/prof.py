"""Opt-in profiling of the event-kernel run loop.

Attach with :meth:`repro.sim.engine.Simulator.enable_profiling` (or the
``--profile`` flag of ``python -m repro run`` / ``standalone``); the
kernel then records, per owner, how many events it executed and how much
wall time their callbacks consumed, plus the run loop's own overhead.

The layer is strictly opt-in: with no profile attached the kernel takes
an uninstrumented run loop, so the default path pays nothing per event
(verified by ``scripts/bench_kernel.py``).

Owner attribution: a callback that is a bound method is keyed by its
object's ``name`` attribute when it has one (``cpu0``, ``gpu``, ...) or
its class name otherwise, plus the method name — so a profile reads as
``cpu0._activate``, ``GpuPipeline._activate``, ``SharedLLC.access``,
``MemRequest.complete`` and immediately shows where the run spends time.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.metrics import RunResult


def owner_of(fn) -> str:
    """Stable, human-readable key for a scheduled callback."""
    obj = getattr(fn, "__self__", None)
    if obj is not None:
        name = getattr(obj, "name", None)
        if not isinstance(name, str):
            name = type(obj).__name__
        return f"{name}.{fn.__name__}"
    return getattr(fn, "__qualname__", repr(fn))


#: owner-key prefix -> component, for the macro per-component wall-time
#: breakdown ``scripts/bench_kernel.py`` gates in CI.  Longest match
#: wins; ``cpu`` catches every per-core owner (``cpu0`` ... ``cpuN``).
_COMPONENT_PREFIXES = (
    ("MemoryController", "dram"),
    ("DramSystem", "dram"),
    ("Bank", "dram"),
    ("SharedLLC", "llc"),
    ("MshrFile", "llc"),
    ("Cache", "llc"),
    ("MemRequest", "mem"),            # completion delivery fan-out
    ("GpuPipeline", "gpu"),
    ("HeterogeneousSystem", "ring"),  # interconnect send hooks
    ("cpu", "core"),
)


def component_of(owner_key: str) -> str:
    """Map a profile owner key (``cpu0._activate``,
    ``MemoryController._try_issue``) onto its component layer."""
    for prefix, component in _COMPONENT_PREFIXES:
        if owner_key.startswith(prefix):
            return component
    return "other"


class KernelProfile:
    """Per-owner event counts and wall-time breakdown of one or more
    :meth:`Simulator.run` calls."""

    def __init__(self) -> None:
        #: owner key -> [event count, cumulative callback seconds]
        self.by_owner: dict[str, list] = {}
        self.events = 0
        self.event_time = 0.0           # seconds inside callbacks
        self.run_time = 0.0             # seconds inside run() overall
        self.cancelled_seen = 0         # lazily-deleted entries skipped
        self.compactions_before = 0     # cancelled count at last compaction

    @property
    def kernel_time(self) -> float:
        """Run-loop overhead: time in run() not spent in callbacks."""
        return max(self.run_time - self.event_time, 0.0)

    def component_shares(self) -> dict[str, float]:
        """Fraction of total run wall time per component layer.

        Owner callback time is folded through :func:`component_of`;
        the run loop's own overhead is reported as ``engine``.  Shares
        sum to 1.0 (modulo rounding) and are machine-independent, which
        is what lets ``scripts/bench_kernel.py`` gate them against a
        committed baseline: a component whose share balloons has
        regressed relative to its peers regardless of host speed.
        """
        total = self.run_time
        if total <= 0:
            return {}
        by_comp: dict[str, float] = {}
        for key, (_count, secs) in self.by_owner.items():
            comp = component_of(key)
            by_comp[comp] = by_comp.get(comp, 0.0) + secs
        by_comp["engine"] = self.kernel_time
        return {comp: round(secs / total, 4)
                for comp, secs in sorted(by_comp.items(),
                                         key=lambda kv: -kv[1])}

    def as_dict(self) -> dict:
        owners = {
            k: {"events": c, "seconds": round(s, 6)}
            for k, (c, s) in sorted(self.by_owner.items(),
                                    key=lambda kv: -kv[1][1])
        }
        return {
            "events": self.events,
            "run_seconds": round(self.run_time, 6),
            "callback_seconds": round(self.event_time, 6),
            "kernel_seconds": round(self.kernel_time, 6),
            "events_per_second": round(self.events / self.run_time)
            if self.run_time else 0,
            "cancelled_skipped": self.cancelled_seen,
            "component_shares": self.component_shares(),
            "owners": owners,
        }

    def report(self, top: int = 20) -> str:
        """Human-readable breakdown, widest consumers first."""
        lines = [
            f"kernel profile: {self.events:,} events in "
            f"{self.run_time:.3f}s "
            f"({self.events / self.run_time:,.0f} ev/s)"
            if self.run_time else "kernel profile: no run recorded",
            f"  callbacks {self.event_time:.3f}s, run-loop overhead "
            f"{self.kernel_time:.3f}s, cancelled skipped "
            f"{self.cancelled_seen:,}",
            f"  {'owner':36s} {'events':>10s} {'seconds':>9s} {'%time':>6s}",
        ]
        total = self.event_time or 1.0
        ranked = sorted(self.by_owner.items(), key=lambda kv: -kv[1][1])
        for key, (count, secs) in ranked[:top]:
            lines.append(f"  {key[:36]:36s} {count:10,d} {secs:9.3f} "
                         f"{100.0 * secs / total:5.1f}%")
        rest = ranked[top:]
        if rest:
            count = sum(c for _, (c, _s) in rest)
            secs = sum(s for _, (_c, s) in rest)
            lines.append(f"  {'(other)':36s} {count:10,d} {secs:9.3f} "
                         f"{100.0 * secs / total:5.1f}%")
        return "\n".join(lines)


def profile_mix(mix_name: str, policy: str = "baseline",
                scale: str = "smoke", seed: int = 1,
                predictor: Optional[str] = None
                ) -> tuple["RunResult", KernelProfile]:
    """Run one mix with kernel profiling on (bypasses the result cache —
    a profiled run is about the breakdown, not the result).
    ``predictor`` overrides the FRPU-seam predictor
    (docs/predictors.md)."""
    from repro.config import default_config
    from repro.mixes import mix as mix_by_name
    from repro.policies import make_policy
    from repro.sim.metrics import collect
    from repro.sim.system import HeterogeneousSystem

    m = mix_by_name(mix_name)
    cfg = default_config(scale=scale, n_cpus=m.n_cpus, seed=seed)
    if predictor is not None:
        cfg = cfg.with_qos(predictor=predictor)
    system = HeterogeneousSystem(cfg, m, make_policy(policy))
    prof = system.sim.enable_profiling()
    system.run()
    return collect(system), prof


def profile_standalone(game: Optional[str] = None,
                       spec: Optional[int] = None, scale: str = "smoke",
                       seed: int = 1) -> tuple["RunResult", KernelProfile]:
    """Profiled standalone run (one GPU game or one SPEC application)."""
    from repro.config import default_config
    from repro.exec.specs import standalone_cpu_spec, standalone_gpu_spec
    from repro.sim.metrics import collect
    from repro.sim.system import HeterogeneousSystem

    if (game is None) == (spec is None):
        raise ValueError("need exactly one of game/spec")
    spec_obj = standalone_gpu_spec(game, scale, seed) if game \
        else standalone_cpu_spec(spec, scale, seed)
    m = spec_obj.mix
    cfg = default_config(scale=scale, n_cpus=m.n_cpus, seed=seed)
    system = HeterogeneousSystem(cfg, m)
    prof = system.sim.enable_profiling()
    system.run()
    return collect(system), prof
