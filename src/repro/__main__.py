"""Command-line interface.

Examples::

    python -m repro run --mix M7 --policy throtcpuprio --scale test
    python -m repro standalone --game DOOM3 --scale smoke
    python -m repro standalone --spec 429
    python -m repro compare --mix M7 --policies baseline,throtcpuprio
    python -m repro compare --mix M7 --policies baseline,sms-0.9 --jobs 4
    python -m repro run --mix M7 --predictor rls   # FRPU seam override
    python -m repro compare-predictors --mixes M1,M7 --scale test
    python -m repro run --mix W8 --trace-spans spans.jsonl --span-sample 64
    python -m repro latency --spans spans.jsonl --compare other.jsonl
    python -m repro run --mix M7 --guard          # invariant watchdogs on
    python -m repro faults                        # fault-injection campaign
    python -m repro faults --only worker-crash,cache-corrupt --scale smoke
    python -m repro list
    python -m repro report --experiment fig9 --scale smoke
    python -m repro cache            # show cache location / size / salt
    python -m repro cache stats      # store-wide hit/miss counters
    python -m repro cache prune --max-size 512   # LRU eviction (MB)
    python -m repro cache --clear
    python -m repro serve --workers 4            # simulation service
    python -m repro serve --log-file ops.jsonl --log-level debug
    python -m repro top                          # live daemon dashboard
    python -m repro top --once                   # one frame (scripts)
    python -m repro run --mix M7 --remote        # route via the daemon
    python -m repro compare --mix M7 --remote .repro_service.sock

Independent runs route through :mod:`repro.exec`: results persist in the
on-disk cache (``.repro_cache/`` by default) and ``--jobs N`` (or the
``REPRO_JOBS`` environment variable) fans cache misses across N worker
processes.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro import (MIXES_M, MIXES_W, POLICY_NAMES, mix, run_mix,
                   standalone_cpu, standalone_gpu, weighted_speedup_for)
from repro.cpu.spec import SPEC_PROFILES
from repro.gpu.workloads import GAME_ORDER, workload_for


def _print_result(r, scale: str) -> None:
    print(f"mix={r.mix_name} policy={r.policy_name} scale={r.scale_name}")
    print(f"  simulated ticks: {r.ticks:,}")
    if r.gpu_app:
        print(f"  GPU {r.gpu_app}: {r.fps:.1f} FPS over "
              f"{r.frames_rendered} frames "
              f"(texture share {r.gpu_texture_share:.0%})")
    if r.cpu_apps:
        ipcs = " ".join(f"{sid}:{r.cpu_ipcs[i]:.2f}"
                        for i, sid in enumerate(r.cpu_apps))
        print(f"  CPU IPCs: {ipcs}")
        ws = weighted_speedup_for(r, scale)
        print(f"  weighted speedup vs standalone: {ws:.3f}")
    print(f"  LLC: cpu misses {r.cpu_llc_misses:,}, "
          f"gpu misses {r.gpu_llc_misses:,}")
    print(f"  DRAM: gpu {r.gpu_dram_bytes/1e6:.1f} MB, cpu "
          f"{(r.dram_cpu_read_bytes + r.dram_cpu_write_bytes)/1e6:.1f} MB,"
          f" row-hit rate {r.dram_row_hit_rate:.0%}")
    if r.qos:
        print(f"  QoS: {r.qos}")
    if r.frpu_errors:
        mean_abs = sum(abs(e) for e in r.frpu_errors) / len(r.frpu_errors)
        name = f" ({r.predictor})" if r.predictor else ""
        print(f"  FRPU{name} mean |error|: {mean_abs:.2f}%")


def _print_telemetry(tel, path: str) -> None:
    counts = ", ".join(f"{t}: {n}" for t, n in tel.counts().items())
    print(f"  telemetry: {tel.count()} records -> {path}  ({counts})")


def _remote_address(args):
    """``--remote [ADDR]``: explicit address, or the ``REPRO_SERVICE``
    env / default socket when given bare.  ``None`` = run locally."""
    if getattr(args, "remote", None) is None:
        return None
    from repro.service import default_address
    return args.remote or default_address()


def cmd_run(args) -> int:
    t0 = time.time()
    address = _remote_address(args)
    if address is not None:
        if args.profile or args.telemetry or args.trace_spans \
                or args.guard:
            print("--remote runs through the daemon's cache; "
                  "--profile/--telemetry/--trace-spans/--guard need a "
                  "local run", file=sys.stderr)
            return 2
        from repro.exec import mix_spec
        from repro.service import remote_run_many
        out = remote_run_many([mix_spec(args.mix, args.policy,
                                        args.scale, args.seed,
                                        predictor=args.predictor)],
                              address=address,
                              fallback=args.remote_fallback)[0]
        if not out.ok:
            print(f"remote run failed: {out.error}", file=sys.stderr)
            return 1
        _print_result(out.result, args.scale)
        print(f"  served from: {out.source} (daemon at {address})")
        print(f"  wall time: {time.time()-t0:.1f}s")
        return 0
    if args.profile:
        from repro.prof import profile_mix
        r, prof = profile_mix(args.mix, args.policy, scale=args.scale,
                              seed=args.seed, predictor=args.predictor)
        _print_result(r, args.scale)
        print(f"  wall time: {time.time()-t0:.1f}s")
        print(prof.report())
        return 0
    if args.trace_spans:
        from repro.spans import trace_mix
        r, tracer = trace_mix(args.mix, args.policy, scale=args.scale,
                              seed=args.seed, path=args.trace_spans,
                              sample_every=args.span_sample,
                              predictor=args.predictor)
        _print_result(r, args.scale)
        print(f"  spans: {tracer.finished} -> {args.trace_spans}")
        print(f"  wall time: {time.time()-t0:.1f}s")
        print(tracer.format_report())
        return 0
    if args.telemetry:
        from repro.telemetry import record_mix
        r, tel = record_mix(args.mix, args.policy, scale=args.scale,
                            seed=args.seed, path=args.telemetry,
                            predictor=args.predictor)
        _print_result(r, args.scale)
        _print_telemetry(tel, args.telemetry)
        print(f"  wall time: {time.time()-t0:.1f}s")
        return 0
    if args.guard:
        from repro.config import default_config
        from repro.guard import InvariantMonitor
        from repro.sim.runner import run_system
        m = mix(args.mix)
        cfg = default_config(scale=args.scale, n_cpus=m.n_cpus,
                             seed=args.seed)
        if args.predictor is not None:
            cfg = cfg.with_qos(predictor=args.predictor)
        monitor = InvariantMonitor()
        r = run_system(cfg, m, args.policy, monitor=monitor)
        _print_result(r, args.scale)
        print(f"  {monitor.report().format()}")
        print(f"  wall time: {time.time()-t0:.1f}s")
        return 0
    r = run_mix(args.mix, args.policy, scale=args.scale, seed=args.seed,
                predictor=args.predictor)
    _print_result(r, args.scale)
    print(f"  wall time: {time.time()-t0:.1f}s")
    return 0


def cmd_standalone(args) -> int:
    if not args.game and not args.spec:
        print("need --game or --spec", file=sys.stderr)
        return 2
    tel = None
    tracer = None
    if args.profile:
        from repro.prof import profile_standalone
        r, prof = profile_standalone(game=args.game, spec=args.spec,
                                     scale=args.scale, seed=args.seed)
    elif args.trace_spans:
        from repro.spans import trace_standalone
        prof = None
        r, tracer = trace_standalone(game=args.game, spec=args.spec,
                                     scale=args.scale, seed=args.seed,
                                     path=args.trace_spans,
                                     sample_every=args.span_sample)
    elif args.telemetry:
        from repro.telemetry import record_standalone
        prof = None
        r, tel = record_standalone(game=args.game, spec=args.spec,
                                   scale=args.scale, seed=args.seed,
                                   path=args.telemetry)
    else:
        prof = None
        r = standalone_gpu(args.game, args.scale, args.seed) if args.game \
            else standalone_cpu(args.spec, args.scale, args.seed)
    if args.game:
        w = workload_for(args.game)
        print(f"{args.game}: {r.fps:.1f} FPS measured "
              f"(Table II: {w.fps_nominal})")
    else:
        print(f"SPEC {args.spec}: IPC {r.cpu_ipcs[0]:.3f}, "
              f"LLC accesses {r.llc['cpu_accesses']:,}")
    if prof is not None:
        print(prof.report())
    if tel is not None:
        _print_telemetry(tel, args.telemetry)
    if tracer is not None:
        print(f"  spans: {tracer.finished} -> {args.trace_spans}")
        print(tracer.format_report())
    return 0


def _progress(outcome, index: int, total: int) -> None:
    """Per-run progress/timing line (stderr, so tables stay clean)."""
    if outcome.source == "run":
        detail = f"ran in {outcome.elapsed:.1f}s"
    elif outcome.source == "error":
        detail = "FAILED"
    else:
        detail = f"cached ({outcome.source})"
    print(f"  [{index + 1}/{total}] {outcome.spec.label}: {detail}",
          file=sys.stderr)


def cmd_compare(args) -> int:
    from repro.exec import mix_spec, run_many
    policies = args.policies.split(",")
    specs = [mix_spec(args.mix, pol, args.scale, args.seed)
             for pol in policies]
    address = _remote_address(args)
    if address is not None:
        from repro.service import remote_run_many
        outcomes = remote_run_many(specs, address=address,
                                   progress=_progress,
                                   fallback=args.remote_fallback)
    else:
        outcomes = run_many(specs, progress=_progress)
    base_ws = None
    failed = 0
    print(f"{'policy':14s} {'GPU FPS':>8s} {'CPU WS':>8s} {'vs base':>8s}")
    for pol, out in zip(policies, outcomes):
        if not out.ok:
            failed += 1
            last = out.error.strip().splitlines()[-1]
            print(f"{pol:14s}   failed: {last}")
            continue
        r = out.result
        ws = weighted_speedup_for(r, args.scale, args.seed) \
            if r.cpu_apps else 0.0
        if base_ws is None:
            base_ws = ws
        rel = ws / base_ws if base_ws else 1.0
        print(f"{pol:14s} {r.fps:8.1f} {ws:8.3f} {rel:8.3f}")
    return 1 if failed else 0


def cmd_compare_predictors(args) -> int:
    """Head-to-head frame-time predictor suite (docs/predictors.md)."""
    from repro.analysis.predictors import compare_predictors
    from repro.config import PREDICTORS
    t0 = time.time()
    mixes = args.mixes.split(",")
    predictors = tuple(PREDICTORS) if args.predictors == "all" \
        else tuple(args.predictors.split(","))
    executor = None
    address = _remote_address(args)
    if address is not None:
        from repro.service import remote_run_many

        def executor(specs):
            return remote_run_many(specs, address=address,
                                   progress=_progress,
                                   fallback=args.remote_fallback)
    cmp = compare_predictors(mixes=mixes, predictors=predictors,
                             scale=args.scale, seed=args.seed,
                             policy=args.policy, progress=_progress,
                             executor=executor)
    print(cmp.format())
    print(f"wall time: {time.time()-t0:.1f}s")
    return 0


def cmd_list(args) -> int:
    print("GPU applications (Table II):")
    for g in GAME_ORDER:
        w = workload_for(g)
        print(f"  {g:14s} {w.api:3s} {w.resolution} "
              f"{w.fps_nominal:6.1f} FPS")
    print("SPEC CPU 2006 profiles:")
    for sid in sorted(SPEC_PROFILES):
        print(f"  {sid} {SPEC_PROFILES[sid].name}")
    print("Mixes: " + " ".join(sorted(MIXES_M, key=lambda n: int(n[1:])))
          + " / " + " ".join(sorted(MIXES_W, key=lambda n: int(n[1:]))))
    print("Policies: " + " ".join(POLICY_NAMES))
    return 0


def cmd_report(args) -> int:
    from repro.analysis.report import main as report_main
    return report_main(["--experiment", args.experiment,
                        "--scale", args.scale, "--seed", str(args.seed)])


def cmd_trace(args) -> int:
    """Record a mix's LLC traffic to an .npz trace."""
    from repro.config import default_config
    from repro.sim.system import HeterogeneousSystem
    from repro.tracing import TraceRecorder
    m = mix(args.mix)
    cfg = default_config(scale=args.scale, n_cpus=m.n_cpus,
                         seed=args.seed)
    system = HeterogeneousSystem(cfg, m)
    rec = TraceRecorder.attach(system)
    system.run()
    rec.save(args.out)
    tr = rec.trace()
    print(f"recorded {len(tr):,} LLC requests over "
          f"{tr.summary()['span_ticks']:,} ticks -> {args.out}")
    for k, v in tr.summary().items():
        print(f"  {k}: {v}")
    return 0


def cmd_latency(args) -> int:
    """Analyse a --trace-spans recording (optionally vs a second one)."""
    from repro.analysis.latency import SpanReport, format_comparison
    rep = SpanReport.load(args.spans)
    print(rep.format_report())
    if args.compare:
        other = SpanReport.load(args.compare)
        print()
        print(format_comparison(rep, other, side=args.side))
    return 0


def cmd_cache(args) -> int:
    """Inspect, prune, or clear the persistent result cache."""
    from repro.exec import shared_cache
    c = shared_cache()
    if args.clear:
        n = c.clear_disk()
        print(f"removed {n} cached result(s) from {os.path.abspath(c.root)}")
        return 0
    if args.action == "prune":
        if args.max_size is None:
            print("cache prune needs --max-size MB", file=sys.stderr)
            return 2
        files, size = c.disk_usage()
        removed, freed = c.prune(int(args.max_size * 1e6))
        left, left_size = c.disk_usage()
        print(f"pruned {removed} file(s) ({freed / 1e6:.1f} MB) "
              f"from {os.path.abspath(c.root)}")
        print(f"store now: {left} entries ({left_size / 1e6:.1f} MB), "
              f"cap {args.max_size:.1f} MB")
        c.persist_stats()
        return 0
    if args.action == "stats":
        files, size = c.disk_usage()
        stats = c.persisted_stats()
        hits = stats["memory_hits"] + stats["disk_hits"]
        total = hits + stats["misses"]
        rate = hits / total if total else 0.0
        print(f"store:      {os.path.abspath(c.root)}")
        print(f"entries:    {files} ({size / 1e6:.1f} MB)")
        print(f"hits:       {hits} (memory {stats['memory_hits']}, "
              f"disk {stats['disk_hits']})")
        print(f"misses:     {stats['misses']}   hit rate: {rate:.0%}")
        print(f"stores:     {stats['stores']}   corrupt: "
              f"{stats['corrupt']}   pruned: {stats['pruned']}")
        return 0
    files, size = c.disk_usage()
    state = "on" if c.disk_enabled() else "off (REPRO_CACHE=0)"
    print(f"cache dir:  {os.path.abspath(c.root)}  [disk layer {state}]")
    print(f"entries:    {files} ({size / 1e6:.1f} MB)")
    print(f"code salt:  {c.salt}")
    return 0


def cmd_serve(args) -> int:
    """Run the simulation service daemon (see docs/service.md)."""
    from repro import metrics as metrics_mod
    from repro.service import ServiceDaemon
    from repro.service.scheduler import AdmissionController
    # structured JSONL oplog: stderr unless --log-file; forked pool
    # workers inherit the sink (docs/observability.md)
    metrics_mod.configure(path=args.log_file, level=args.log_level)
    daemon = ServiceDaemon(
        socket_path=args.socket,
        http_port=args.http_port,
        workers=args.workers,
        timeout=args.timeout,
        retries=args.retries,
        admission=AdmissionController(
            n_g=args.admit_burst, w_g_step=args.admit_step,
            w_g_max=args.admit_max, target_depth=args.admit_depth),
        journal_sync=args.journal_sync,
        max_queue=args.max_queue,
        max_frame=args.max_frame,
        write_timeout=args.write_timeout)
    print(f"repro service: socket {os.path.abspath(args.socket)}"
          + (f", http http://127.0.0.1:{args.http_port}"
             if args.http_port else "")
          + f", {args.workers} warm worker(s)")
    print(f"  cache: {os.path.abspath(daemon.cache.root)}")
    print(f"  oplog: {args.log_file or 'stderr'} "
          f"(level {args.log_level}); GET /metrics + /healthz for "
          "scraping, `python -m repro top` for a live view")
    print("  SIGTERM/SIGINT drains gracefully "
          "(queued jobs salvage as 'interrupted')")
    daemon.serve_forever()
    print("service drained; bye")
    return 0


def cmd_top(args) -> int:
    """Live terminal view of a running daemon (docs/observability.md)."""
    from repro.metrics.top import run_top
    return run_top(address=args.address, interval=args.interval,
                   once=args.once)


def cmd_faults(args) -> int:
    """Run the fault-injection campaign (see docs/robustness.md)."""
    from repro.faults import (run_campaign, run_service_campaign,
                              scenario_names, service_scenario_names)
    if args.list_scenarios:
        names = service_scenario_names() if args.service \
            else scenario_names()
        for name in names:
            print(name)
        return 0
    only = args.only.split(",") if args.only else None
    t0 = time.time()

    def progress(outcome):
        print(f"  {outcome.name}: {outcome.classification}",
              file=sys.stderr)

    if args.service:
        report = run_service_campaign(scale=args.scale, seed=args.seed,
                                      only=only, progress=progress)
    else:
        report = run_campaign(scale=args.scale, seed=args.seed,
                              mix_name=args.mix, policy=args.policy,
                              only=only, progress=progress)
    print(report.format())
    print(f"wall time: {time.time()-t0:.1f}s")
    return 0 if report.ok else 1


def cmd_sweep(args) -> int:
    """QoS-target sweep on one mix (the headline ablation)."""
    from repro.analysis.sweep import sweep, vary_qos
    targets = [float(x) for x in args.targets.split(",")]
    executor = None
    address = _remote_address(args)
    if address is not None:
        from repro.service import remote_run_many

        def executor(specs):
            return remote_run_many(specs, address=address, strict=True,
                                   fallback=args.remote_fallback)
    rows = sweep(args.mix, policy="throtcpuprio", scale=args.scale,
                 seed=args.seed, variations=vary_qos(target_fps=targets),
                 executor=executor)
    for row in rows:
        print(f"  {row.label:18s} -> GPU {row.result.fps:6.1f} FPS")
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = ap.add_subparsers(dest="cmd", required=True)

    p = sub.add_parser("run", help="run one mix under one policy")
    p.add_argument("--mix", default="M7")
    p.add_argument("--policy", default="throtcpuprio")
    p.add_argument("--profile", action="store_true",
                   help="profile the event kernel (per-owner event "
                        "counts + wall-time breakdown; bypasses cache)")
    p.add_argument("--telemetry", metavar="PATH",
                   help="record control-loop telemetry to PATH "
                        "(.jsonl or .csv; bypasses cache; see "
                        "docs/telemetry.md)")
    p.add_argument("--trace-spans", metavar="PATH",
                   help="sample request-path spans to PATH (.jsonl; "
                        "bypasses cache; see docs/latency.md)")
    p.add_argument("--span-sample", type=int, default=64, metavar="N",
                   help="trace 1-in-N eligible requests (default 64)")
    p.add_argument("--guard", action="store_true",
                   help="attach the invariant monitor (conservation, "
                        "occupancy, liveness checks; bypasses cache; "
                        "see docs/robustness.md)")
    from repro.config import PREDICTORS
    p.add_argument("--predictor", default=None,
                   choices=list(PREDICTORS),
                   help="frame-time predictor behind the FRPU seam "
                        "(default: the config's, i.e. the paper's "
                        "'rtp' extrapolator; see docs/predictors.md)")
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser("standalone", help="run one app alone")
    p.add_argument("--game")
    p.add_argument("--spec", type=int)
    p.add_argument("--profile", action="store_true",
                   help="profile the event kernel (bypasses cache)")
    p.add_argument("--telemetry", metavar="PATH",
                   help="record control-loop telemetry to PATH "
                        "(.jsonl or .csv; bypasses cache)")
    p.add_argument("--trace-spans", metavar="PATH",
                   help="sample request-path spans to PATH (.jsonl; "
                        "bypasses cache; see docs/latency.md)")
    p.add_argument("--span-sample", type=int, default=64, metavar="N",
                   help="trace 1-in-N eligible requests (default 64)")
    p.set_defaults(fn=cmd_standalone)

    p = sub.add_parser("compare", help="compare policies on one mix")
    p.add_argument("--mix", default="M7")
    p.add_argument("--policies",
                   default="baseline,dynprio,helm,throtcpuprio")
    p.set_defaults(fn=cmd_compare)

    p = sub.add_parser("compare-predictors",
                       help="head-to-head frame-time predictor suite: "
                            "accuracy per phase + end-to-end FPS/CPU-"
                            "speedup deltas (see docs/predictors.md)")
    p.add_argument("--mixes", default="M1,M7", metavar="A,B,...",
                   help="Table III mixes to evaluate (default M1,M7)")
    p.add_argument("--predictors", default="all", metavar="A,B,...",
                   help="predictors to pit against each other "
                        "(default: all registered)")
    p.add_argument("--policy", default="throtcpuprio",
                   help="throttling policy consulting the predictor "
                        "(default throtcpuprio)")
    p.set_defaults(fn=cmd_compare_predictors)

    p = sub.add_parser("list", help="list workloads, mixes, policies")
    p.set_defaults(fn=cmd_list)

    p = sub.add_parser("report", help="regenerate a table/figure")
    p.add_argument("--experiment", default="all")
    p.set_defaults(fn=cmd_report)

    p = sub.add_parser("trace", help="record a mix's LLC traffic")
    p.add_argument("--mix", default="M7")
    p.add_argument("--out", default="trace.npz")
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser("latency",
                       help="analyse a --trace-spans recording")
    p.add_argument("--spans", required=True, metavar="PATH",
                   help="span stream from --trace-spans")
    p.add_argument("--compare", metavar="PATH",
                   help="second recording to diff stage shares against")
    p.add_argument("--side", default="cpu", choices=["cpu", "gpu"],
                   help="side for the --compare share table")
    p.set_defaults(fn=cmd_latency)

    p = sub.add_parser("sweep", help="QoS-target sweep on one mix")
    p.add_argument("--mix", default="M7")
    p.add_argument("--targets", default="30,40,50")
    p.set_defaults(fn=cmd_sweep)

    p = sub.add_parser("cache",
                       help="inspect/prune/clear the result cache")
    p.add_argument("action", nargs="?", default="info",
                   choices=["info", "stats", "prune"],
                   help="info (default): location/size/salt; stats: "
                        "store-wide hit/miss counters; prune: LRU "
                        "eviction down to --max-size")
    p.add_argument("--max-size", type=float, metavar="MB",
                   help="prune target: keep at most MB megabytes, "
                        "evicting least-recently-used results first")
    p.add_argument("--clear", action="store_true",
                   help="delete every persisted result")
    p.set_defaults(fn=cmd_cache)

    p = sub.add_parser("serve",
                       help="run the simulation service daemon "
                            "(warm workers, shared cache, admission "
                            "control; see docs/service.md)")
    p.add_argument("--socket", default=".repro_service.sock",
                   metavar="PATH", help="Unix socket rendezvous "
                   "(default .repro_service.sock)")
    p.add_argument("--http-port", type=int, default=None, metavar="PORT",
                   help="also serve the HTTP/JSON adapter on "
                        "127.0.0.1:PORT")
    p.add_argument("--workers", type=int, default=2, metavar="N",
                   help="persistent warm worker processes (default 2)")
    p.add_argument("--timeout", type=float, default=None, metavar="S",
                   help="per-attempt wall-clock cap; a wedged worker "
                        "is recycled (default: none)")
    p.add_argument("--retries", type=int, default=1, metavar="N",
                   help="retries for worker death/timeouts (default 1)")
    p.add_argument("--admit-burst", type=int, default=8, metavar="N_G",
                   help="per-client burst allowance before gating "
                        "(default 8)")
    p.add_argument("--admit-step", type=float, default=0.05,
                   metavar="S", help="W_G growth step, seconds per "
                   "job of backlog over target (default 0.05)")
    p.add_argument("--admit-max", type=float, default=2.0, metavar="S",
                   help="W_G ceiling in seconds (default 2.0)")
    p.add_argument("--admit-depth", type=int, default=4, metavar="D",
                   help="backlog target: no gating at or below this "
                        "queue depth (default 4)")
    p.add_argument("--log-file", default=None, metavar="PATH",
                   help="append JSONL oplog records to PATH "
                        "(default: stderr)")
    p.add_argument("--log-level", default="info",
                   choices=["debug", "info", "warning", "error"],
                   help="oplog severity threshold (default info)")
    p.add_argument("--journal-sync", default="batch",
                   choices=["always", "batch", "off", "disabled"],
                   help="crash-safe job journal fsync policy: always "
                        "(fsync per record), batch (fsync every 32), "
                        "off (OS flush only), disabled (no journal; "
                        "default batch; see docs/service.md)")
    p.add_argument("--max-queue", type=int, default=256, metavar="N",
                   help="pending-job bound: submissions past this "
                        "depth get a structured 'overloaded' refusal "
                        "with a retry-after hint (default 256)")
    p.add_argument("--max-frame", type=int, default=8 * 1024 * 1024,
                   metavar="BYTES",
                   help="largest accepted request line; longer frames "
                        "get a 'protocol_error' refusal and the "
                        "connection is closed (default 8 MiB)")
    p.add_argument("--write-timeout", type=float, default=30.0,
                   metavar="S",
                   help="drop clients that stall reads longer than "
                        "this while the daemon writes (default 30)")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser("top",
                       help="live view of a running daemon: polls "
                            "GET /metrics + /healthz "
                            "(see docs/observability.md)")
    p.add_argument("address", nargs="?", default=None,
                   help="daemon rendezvous: socket path or host:port "
                        "(default $REPRO_SERVICE or "
                        ".repro_service.sock)")
    p.add_argument("--interval", type=float, default=2.0, metavar="S",
                   help="refresh period in seconds (default 2)")
    p.add_argument("--once", action="store_true",
                   help="print one frame and exit (for scripts)")
    p.set_defaults(fn=cmd_top)

    p = sub.add_parser("faults",
                       help="fault-injection campaign: every fault "
                            "detected or tolerated, never silent")
    p.add_argument("--mix", default="W8")
    p.add_argument("--policy", default="throtcpuprio")
    p.add_argument("--only", metavar="A,B,...",
                   help="run only these scenarios")
    p.add_argument("--list-scenarios", action="store_true",
                   help="print scenario names and exit")
    p.add_argument("--service", action="store_true",
                   help="run the serving-layer chaos campaign instead "
                        "(daemon SIGKILL + journal recovery, torn/"
                        "corrupt journals, protocol abuse, slowloris, "
                        "pool massacre; see docs/robustness.md)")
    p.set_defaults(fn=cmd_faults)

    for sp in sub.choices.values():
        sp.add_argument("--scale", default="smoke",
                        choices=["smoke", "test", "bench", "paper"])
        sp.add_argument("--seed", type=int, default=1)
        sp.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes for independent runs "
                             "(0 = one per core; default: $REPRO_JOBS or 1)")
    for name in ("run", "compare", "compare-predictors", "sweep"):
        sub.choices[name].add_argument(
            "--remote", nargs="?", const="", default=None,
            metavar="ADDR",
            help="route runs through a running `repro serve` daemon "
                 "(socket path or host:port; comma-separated list = "
                 "failover order; bare --remote takes $REPRO_SERVICE "
                 "or .repro_service.sock)")
        sub.choices[name].add_argument(
            "--remote-fallback", default=None,
            choices=["local", "error"],
            help="when every daemon in the --remote list is "
                 "unreachable: run locally (local, the default) or "
                 "fail the command (error); also "
                 "$REPRO_REMOTE_FALLBACK")

    # the campaign defaults to test scale: smoke runs are short enough
    # that some scenarios (FRPU misprediction) may never engage
    sub.choices["faults"].set_defaults(scale="test")

    args = ap.parse_args(argv)
    if args.jobs is not None:
        # route every layer (run_many defaults, figure prefetches)
        # through the requested fan-out
        os.environ["REPRO_JOBS"] = str(args.jobs)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
