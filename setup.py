"""Legacy setuptools shim for offline editable installs (see pyproject)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=("Reproduction of 'Improving CPU Performance through "
                 "Dynamic GPU Access Throttling in CPU-GPU Heterogeneous "
                 "Processors' (IPDPSW 2017)"),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)
